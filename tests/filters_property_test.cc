// Property tests for the filter/probing layer: filters are NECESSARY
// conditions, so for any predicate p and any B-row b, the candidate set
// returned by ProbePredicate must contain every A-row a for which p(a, b)
// holds. Violations are silent recall loss — the worst failure mode a
// blocking system can have.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "blocking/apply.h"
#include "blocking/filters.h"
#include "blocking/index_builder.h"
#include "mapreduce/cluster.h"
#include "workload/generator.h"

namespace falcon {
namespace {

struct ProbeFixture {
  GeneratedDataset data;
  FeatureSet fs;
  Cluster cluster{ClusterConfig{}};
  IndexCatalog catalog;

  ProbeFixture() {
    WorkloadOptions opt;
    opt.size_a = 220;
    opt.size_b = 150;
    opt.seed = 9;
    opt.missing_rate = 0.06;  // stress the missing-value paths
    data = GenerateProducts(opt);
    fs = FeatureSet::Generate(data.a, data.b);
  }

  /// Finds a blocking feature by function (+ tokenization) and attribute.
  int FindFeature(SimFunction fn, const char* attr,
                  Tokenization tok = Tokenization::kWord) {
    for (const auto& f : fs.features()) {
      if (f.fn == fn && f.name.find(attr) != std::string::npos &&
          (!IsSetBased(fn) || f.tok == tok)) {
        return f.id;
      }
    }
    return -1;
  }

  void EnsureIndexFor(const Predicate& pred) {
    IndexBuilder builder(&data.a, &cluster);
    IndexNeed need = ClassifyPredicate(pred, fs);
    ASSERT_NE(need.kind, IndexKind::kNone);
    builder.Ensure({need}, &catalog);
  }

  /// Checks the necessary-condition property over every B row.
  void CheckSoundness(const Predicate& pred) {
    ClauseProber prober(&catalog, &fs, data.a.num_rows());
    size_t filtered_total = 0;
    size_t probes = 0;
    for (RowId b = 0; b < data.b.num_rows(); ++b) {
      CandidateSet cand = prober.ProbePredicate(pred, data.b, b);
      if (cand.all) continue;  // trivially sound
      ++probes;
      filtered_total += data.a.num_rows() - cand.rows.size();
      std::set<RowId> set(cand.rows.begin(), cand.rows.end());
      for (RowId a = 0; a < data.a.num_rows(); ++a) {
        double v = fs.Compute(pred.feature_id, data.a, a, data.b, b);
        bool holds = pred.Eval(v) || std::isnan(v);
        if (holds) {
          ASSERT_TRUE(set.count(a))
              << "filter dropped a satisfying pair: a=" << a << " b=" << b
              << " feature=" << fs.feature(pred.feature_id).name
              << " value=" << v;
        }
      }
    }
    // The filter must actually prune (otherwise the test is vacuous).
    EXPECT_GT(probes, 0u);
    EXPECT_GT(filtered_total, 0u);
  }
};

TEST(FilterSoundnessE2E, JaccardWordPrefix) {
  ProbeFixture fx;
  int f = fx.FindFeature(SimFunction::kJaccard, "(title,title)");
  ASSERT_GE(f, 0);
  for (double t : {0.3, 0.5, 0.8}) {
    Predicate pred{f, f, PredOp::kGt, t};
    fx.EnsureIndexFor(pred);
    fx.CheckSoundness(pred);
  }
}

TEST(FilterSoundnessE2E, Jaccard3gram) {
  ProbeFixture fx;
  int f = fx.FindFeature(SimFunction::kJaccard, "(brand,brand)",
                         Tokenization::kQgram3);
  ASSERT_GE(f, 0);
  Predicate pred{f, f, PredOp::kGe, 0.6};
  fx.EnsureIndexFor(pred);
  fx.CheckSoundness(pred);
}

TEST(FilterSoundnessE2E, DiceWord) {
  ProbeFixture fx;
  int f = fx.FindFeature(SimFunction::kDice, "(title,title)");
  ASSERT_GE(f, 0);
  Predicate pred{f, f, PredOp::kGt, 0.5};
  fx.EnsureIndexFor(pred);
  fx.CheckSoundness(pred);
}

TEST(FilterSoundnessE2E, CosineWord) {
  ProbeFixture fx;
  int f = fx.FindFeature(SimFunction::kCosine, "(title,title)");
  ASSERT_GE(f, 0);
  Predicate pred{f, f, PredOp::kGe, 0.45};
  fx.EnsureIndexFor(pred);
  fx.CheckSoundness(pred);
}

TEST(FilterSoundnessE2E, OverlapWord) {
  ProbeFixture fx;
  int f = fx.FindFeature(SimFunction::kOverlap, "(title,title)");
  ASSERT_GE(f, 0);
  Predicate pred{f, f, PredOp::kGt, 0.6};
  fx.EnsureIndexFor(pred);
  fx.CheckSoundness(pred);
}

TEST(FilterSoundnessE2E, Levenshtein3gram) {
  ProbeFixture fx;
  int f = fx.FindFeature(SimFunction::kLevenshtein, "(brand,brand)");
  ASSERT_GE(f, 0);
  Predicate pred{f, f, PredOp::kGe, 0.7};
  fx.EnsureIndexFor(pred);
  fx.CheckSoundness(pred);
}

TEST(FilterSoundnessE2E, ExactMatchHash) {
  ProbeFixture fx;
  int f = fx.FindFeature(SimFunction::kExactMatch, "(brand,brand)");
  ASSERT_GE(f, 0);
  Predicate pred{f, f, PredOp::kGt, 0.5};
  fx.EnsureIndexFor(pred);
  fx.CheckSoundness(pred);
}

TEST(FilterSoundnessE2E, AbsDiffRange) {
  ProbeFixture fx;
  int f = fx.FindFeature(SimFunction::kAbsDiff, "(price,price)");
  ASSERT_GE(f, 0);
  for (double t : {5.0, 50.0}) {
    Predicate pred{f, f, PredOp::kLe, t};
    fx.EnsureIndexFor(pred);
    fx.CheckSoundness(pred);
  }
}

TEST(FilterSoundnessE2E, RelDiffRange) {
  ProbeFixture fx;
  int f = fx.FindFeature(SimFunction::kRelDiff, "(price,price)");
  ASSERT_GE(f, 0);
  Predicate pred{f, f, PredOp::kLt, 0.1};
  fx.EnsureIndexFor(pred);
  fx.CheckSoundness(pred);
}

TEST(FilterSoundnessE2E, MissingBValueYieldsAll) {
  ProbeFixture fx;
  int f = fx.FindFeature(SimFunction::kExactMatch, "(brand,brand)");
  ASSERT_GE(f, 0);
  Predicate pred{f, f, PredOp::kGt, 0.5};
  fx.EnsureIndexFor(pred);
  ClauseProber prober(&fx.catalog, &fx.fs, fx.data.a.num_rows());
  int col_b = fx.fs.feature(f).col_b;
  bool saw_missing = false;
  for (RowId b = 0; b < fx.data.b.num_rows(); ++b) {
    if (!fx.data.b.IsMissing(b, col_b)) continue;
    saw_missing = true;
    CandidateSet cand = prober.ProbePredicate(pred, fx.data.b, b);
    EXPECT_TRUE(cand.all) << "missing B value must not filter";
  }
  EXPECT_TRUE(saw_missing) << "fixture should contain missing brands";
}

TEST(FilterSoundnessE2E, MissingAValuesAlwaysCandidates) {
  ProbeFixture fx;
  int f = fx.FindFeature(SimFunction::kExactMatch, "(brand,brand)");
  ASSERT_GE(f, 0);
  Predicate pred{f, f, PredOp::kGt, 0.5};
  fx.EnsureIndexFor(pred);
  ClauseProber prober(&fx.catalog, &fx.fs, fx.data.a.num_rows());
  int col_a = fx.fs.feature(f).col_a;
  std::vector<RowId> missing_a;
  for (RowId a = 0; a < fx.data.a.num_rows(); ++a) {
    if (fx.data.a.IsMissing(a, col_a)) missing_a.push_back(a);
  }
  ASSERT_FALSE(missing_a.empty());
  for (RowId b = 0; b < std::min<RowId>(fx.data.b.num_rows(), 20); ++b) {
    CandidateSet cand = prober.ProbePredicate(pred, fx.data.b, b);
    if (cand.all) continue;
    std::set<RowId> set(cand.rows.begin(), cand.rows.end());
    for (RowId a : missing_a) {
      EXPECT_TRUE(set.count(a))
          << "A-row with missing value must stay a candidate";
    }
  }
}

// Second operator-equivalence sweep with a rule sequence exercising the
// remaining filter paths: dice_3gram, cosine_word, overlap_word,
// levenshtein, rel_diff.
TEST(ApplyEquivalenceWideRules, AllOperatorsMatchBruteForce) {
  WorkloadOptions opt;
  opt.size_a = 180;
  opt.size_b = 420;
  opt.seed = 17;
  opt.missing_rate = 0.05;
  auto data = GenerateProducts(opt);
  auto fs = FeatureSet::Generate(data.a, data.b);

  auto find = [&](SimFunction fn, const char* attr, Tokenization tok) {
    for (const auto& f : fs.features()) {
      if (f.fn == fn && f.name.find(attr) != std::string::npos &&
          (!IsSetBased(fn) || f.tok == tok)) {
        return f.id;
      }
    }
    return -1;
  };
  int dice3 = find(SimFunction::kDice, "(brand,brand)",
                   Tokenization::kQgram3);
  int cos = find(SimFunction::kCosine, "(title,title)", Tokenization::kWord);
  int ovl = find(SimFunction::kOverlap, "(descr,descr)",
                 Tokenization::kWord);
  int lev = find(SimFunction::kLevenshtein, "(modelno,modelno)",
                 Tokenization::kQgram3);
  int rel = find(SimFunction::kRelDiff, "(price,price)",
                 Tokenization::kWord);
  ASSERT_GE(dice3, 0);
  ASSERT_GE(cos, 0);
  ASSERT_GE(ovl, 0);
  ASSERT_GE(lev, 0);
  ASSERT_GE(rel, 0);

  RuleSequence seq;
  {
    Rule r;  // weak brand similarity AND prices far apart (relatively)
    r.predicates = {{dice3, dice3, PredOp::kLt, 0.55},
                    {rel, rel, PredOp::kGe, 0.08}};
    r.selectivity = 0.2;
    seq.rules.push_back(r);
  }
  {
    Rule r;  // dissimilar titles AND dissimilar descriptions
    r.predicates = {{cos, cos, PredOp::kLe, 0.5},
                    {ovl, ovl, PredOp::kLe, 0.6}};
    r.selectivity = 0.1;
    seq.rules.push_back(r);
  }
  {
    Rule r;  // model numbers not even close
    r.predicates = {{lev, lev, PredOp::kLt, 0.6}};
    r.selectivity = 0.3;
    seq.rules.push_back(r);
  }
  seq.selectivity = 0.05;

  Cluster cluster{ClusterConfig{}};
  IndexCatalog catalog;
  IndexBuilder builder(&data.a, &cluster);
  builder.Ensure(IndexBuilder::NeedsOfCnf(ToCnf(seq), fs), &catalog);

  RuleApplier applier(seq, &fs, &data.a, &data.b);
  std::set<uint64_t> expected;
  for (RowId a = 0; a < data.a.num_rows(); ++a) {
    for (RowId b = 0; b < data.b.num_rows(); ++b) {
      if (applier.Keep(a, b)) {
        expected.insert((static_cast<uint64_t>(a) << 32) | b);
      }
    }
  }
  ASSERT_FALSE(expected.empty());
  ASSERT_LT(expected.size(), data.a.num_rows() * data.b.num_rows());

  for (ApplyMethod m :
       {ApplyMethod::kApplyAll, ApplyMethod::kApplyGreedy,
        ApplyMethod::kApplyConjunct, ApplyMethod::kApplyPredicate,
        ApplyMethod::kMapSide, ApplyMethod::kReduceSplit}) {
    auto res = ApplyBlockingRules(data.a, data.b, seq, fs, catalog,
                                  &cluster, m, ApplyOptions{});
    ASSERT_TRUE(res.ok()) << ApplyMethodName(m) << ": "
                          << res.status().ToString();
    std::set<uint64_t> got;
    for (auto [a, b] : res->pairs) {
      got.insert((static_cast<uint64_t>(a) << 32) | b);
    }
    EXPECT_EQ(got, expected) << ApplyMethodName(m);
  }
}

// --- Dictionary-encoded path equivalence ---------------------------------------
//
// The token-store probe path must be byte-identical to the string path: same
// candidate rows, in the same order, for every predicate and every B row.
// Two catalogs are built over the same tables — one with B-side store views
// (store probing) and one without (tokenize + dictionary-lookup fallback) —
// and their ProbePredicate outputs compared exactly.
TEST(DictEncodedEquivalence, StoreAndFallbackProbesAreByteIdentical) {
  WorkloadOptions opt;
  opt.size_a = 220;
  opt.size_b = 150;
  opt.seed = 9;
  opt.missing_rate = 0.06;
  auto data = GenerateProducts(opt);
  auto fs = FeatureSet::Generate(data.a, data.b);

  struct Case {
    SimFunction fn;
    const char* attr;
    Tokenization tok;
    PredOp op;
    double t;
  };
  const Case cases[] = {
      {SimFunction::kJaccard, "(title,title)", Tokenization::kWord,
       PredOp::kGt, 0.4},
      {SimFunction::kDice, "(title,title)", Tokenization::kWord, PredOp::kGe,
       0.5},
      {SimFunction::kCosine, "(title,title)", Tokenization::kWord,
       PredOp::kGe, 0.45},
      {SimFunction::kOverlap, "(descr,descr)", Tokenization::kWord,
       PredOp::kGt, 0.6},
      {SimFunction::kJaccard, "(brand,brand)", Tokenization::kQgram3,
       PredOp::kGe, 0.6},
      {SimFunction::kLevenshtein, "(brand,brand)", Tokenization::kQgram3,
       PredOp::kGe, 0.7},
  };

  auto find = [&](const Case& c) {
    for (const auto& f : fs.features()) {
      if (f.fn == c.fn && f.name.find(c.attr) != std::string::npos &&
          (!IsSetBased(c.fn) || f.tok == c.tok)) {
        return f.id;
      }
    }
    return -1;
  };

  Cluster cluster{ClusterConfig{}};
  // with_store: full build including B-side views. fallback: indexes only —
  // its catalog still interns A's tokens (BuildOrdering builds the A store),
  // but has no view for table B, forcing the tokenize+Find fallback.
  IndexCatalog with_store;
  IndexCatalog fallback;
  IndexBuilder builder(&data.a, &cluster);
  builder.EnsureTokenStores(data.b, fs, &with_store);
  ASSERT_NE(with_store.store(&data.b), nullptr);
  for (const Case& c : cases) {
    int f = find(c);
    ASSERT_GE(f, 0) << c.attr;
    Predicate pred{f, f, c.op, c.t};
    IndexNeed need = ClassifyPredicate(pred, fs);
    builder.Ensure({need}, &with_store);
    builder.Ensure({need}, &fallback);
  }
  ASSERT_EQ(fallback.store(&data.b), nullptr);

  ClauseProber store_prober(&with_store, &fs, data.a.num_rows());
  ClauseProber fb_prober(&fallback, &fs, data.a.num_rows());
  for (const Case& c : cases) {
    Predicate pred{find(c), find(c), c.op, c.t};
    for (RowId b = 0; b < data.b.num_rows(); ++b) {
      CandidateSet via_store = store_prober.ProbePredicate(pred, data.b, b);
      CandidateSet via_fb = fb_prober.ProbePredicate(pred, data.b, b);
      ASSERT_EQ(via_store.all, via_fb.all)
          << c.attr << " b=" << b << " t=" << c.t;
      ASSERT_EQ(via_store.rows, via_fb.rows)
          << c.attr << " b=" << b << " t=" << c.t;
    }
  }
}

// Set-based features computed through bound token stores must equal the
// string-path values exactly — including NaN for missing values.
TEST(DictEncodedEquivalence, BoundFeatureComputeMatchesStringPath) {
  WorkloadOptions opt;
  opt.size_a = 120;
  opt.size_b = 90;
  opt.seed = 21;
  opt.missing_rate = 0.08;
  auto data = GenerateProducts(opt);
  auto fs = FeatureSet::Generate(data.a, data.b);

  // Unbound (string path) values first.
  std::vector<std::vector<double>> expect(data.a.num_rows());
  std::vector<int> ids = fs.blocking_ids();
  for (RowId a = 0; a < data.a.num_rows(); ++a) {
    for (RowId b = 0; b < data.b.num_rows(); ++b) {
      for (int id : ids) {
        expect[a].push_back(fs.Compute(id, data.a, a, data.b, b));
      }
    }
  }

  Cluster cluster{ClusterConfig{}};
  IndexCatalog catalog;
  IndexBuilder builder(&data.a, &cluster);
  builder.EnsureTokenStores(data.b, fs, &catalog);
  fs.BindTokenStores(catalog.store(&data.a), catalog.store(&data.b));

  size_t nan_count = 0;
  for (RowId a = 0; a < data.a.num_rows(); ++a) {
    size_t i = 0;
    for (RowId b = 0; b < data.b.num_rows(); ++b) {
      for (int id : ids) {
        double want = expect[a][i++];
        double got = fs.Compute(id, data.a, a, data.b, b);
        if (std::isnan(want)) {
          ++nan_count;
          ASSERT_TRUE(std::isnan(got))
              << fs.feature(id).name << " a=" << a << " b=" << b;
        } else {
          ASSERT_EQ(want, got)  // exact, not approximate
              << fs.feature(id).name << " a=" << a << " b=" << b;
        }
      }
    }
  }
  EXPECT_GT(nan_count, 0u) << "fixture should exercise missing values";
  fs.BindTokenStores(nullptr, nullptr);
}

// Concurrent probing against one shared read-only store: every thread reads
// the same dictionary/store/bundles with zero locking. Run under
// FALCON_SANITIZE=thread this is the data-race regression test for the
// dictionary-encoded path.
TEST(DictEncodedEquivalence, ParallelApplyMatchesSerialWithStores) {
  WorkloadOptions opt;
  opt.size_a = 150;
  opt.size_b = 200;
  opt.seed = 33;
  opt.missing_rate = 0.05;
  auto data = GenerateProducts(opt);
  auto fs = FeatureSet::Generate(data.a, data.b);

  auto find = [&](SimFunction fn, const char* attr, Tokenization tok) {
    for (const auto& f : fs.features()) {
      if (f.fn == fn && f.name.find(attr) != std::string::npos &&
          (!IsSetBased(fn) || f.tok == tok)) {
        return f.id;
      }
    }
    return -1;
  };
  int jac = find(SimFunction::kJaccard, "(title,title)", Tokenization::kWord);
  int dice3 =
      find(SimFunction::kDice, "(brand,brand)", Tokenization::kQgram3);
  ASSERT_GE(jac, 0);
  ASSERT_GE(dice3, 0);
  RuleSequence seq;
  Rule r;
  r.predicates = {{jac, jac, PredOp::kLt, 0.45},
                  {dice3, dice3, PredOp::kLt, 0.6}};
  r.selectivity = 0.2;
  seq.rules.push_back(r);
  seq.selectivity = 0.2;

  auto run = [&](int threads) {
    ClusterConfig cfg;
    cfg.local_threads = threads;
    Cluster cluster{cfg};
    IndexCatalog catalog;
    IndexBuilder builder(&data.a, &cluster);
    builder.EnsureTokenStores(data.b, fs, &catalog);
    builder.Ensure(IndexBuilder::NeedsOfCnf(ToCnf(seq), fs), &catalog);
    fs.BindTokenStores(catalog.store(&data.a), catalog.store(&data.b));
    auto res = ApplyBlockingRules(data.a, data.b, seq, fs, catalog, &cluster,
                                  ApplyMethod::kApplyPredicate,
                                  ApplyOptions{});
    fs.BindTokenStores(nullptr, nullptr);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    auto pairs = res->pairs;
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };
  auto serial = run(1);
  auto wide = run(4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, wide);
}

}  // namespace
}  // namespace falcon
