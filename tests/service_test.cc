// Multi-tenant service scheduler suite (session/service.h): admission
// control, fair-share stepping, tenant budget ledgers, and evict/resume
// determinism — plus regression tests for the concurrency-bugfix sweep that
// shipped with the service layer (SessionManager registry races, the
// Cluster::total_machine_time data race, em_service argument parsing). The
// race regressions are meant to run under TSan (the CI `service` lane).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../examples/em_service_args.h"
#include "crowd/faulty_crowd.h"
#include "crowd/resilient_crowd.h"
#include "session/service.h"
#include "session_harness.h"

namespace falcon {
namespace {

// Scheduling-logic tests step many sessions; a minimal matcher-only run
// keeps each one cheap while still exercising every crowd operator.
FalconConfig TinyConfig(uint64_t seed) {
  FalconConfig cfg;
  cfg.al_max_iterations = 3;
  cfg.deterministic_rule_cost = true;
  cfg.estimate_accuracy = false;
  cfg.seed = seed;
  return cfg;
}

GeneratedDataset TinyData(uint64_t seed) {
  WorkloadOptions opt;
  opt.size_a = 40;
  opt.size_b = 80;
  opt.seed = seed;
  return GenerateProducts(opt);
}

// ---------------------------------------------------------------------------
// TenantLedger / LedgeredCrowd units
// ---------------------------------------------------------------------------

TEST(TenantLedgerTest, ReserveCommitReleaseKeepsCapInvariant) {
  TenantLedger ledger(1.00);
  // Reserves the longest affordable prefix, not the whole request.
  TenantLedger::Reservation r1 =
      ledger.ReservePrefix({0.30, 0.30, 0.30, 0.30});
  EXPECT_EQ(r1.questions, 3u);
  EXPECT_NEAR(r1.amount, 0.90, 1e-12);
  EXPECT_NEAR(ledger.reserved(), 0.90, 1e-12);

  // A concurrent reservation sees only the unreserved remainder.
  TenantLedger::Reservation r2 = ledger.ReservePrefix({0.30});
  EXPECT_EQ(r2.questions, 0u);
  ledger.Release(r2);

  // Commit settles at actual cost and frees the reserved headroom.
  ledger.Commit(r1, 0.50);
  EXPECT_NEAR(ledger.spent(), 0.50, 1e-12);
  EXPECT_NEAR(ledger.reserved(), 0.0, 1e-12);
  EXPECT_NEAR(ledger.remaining(), 0.50, 1e-12);

  TenantLedger::Reservation r3 = ledger.ReservePrefix({0.30, 0.30});
  EXPECT_EQ(r3.questions, 1u);
  ledger.Release(r3);
  EXPECT_NEAR(ledger.remaining(), 0.50, 1e-12);
}

TEST(TenantLedgerTest, ExactCapBatchFits) {
  TenantLedger ledger(0.06);
  TenantLedger::Reservation r = ledger.ReservePrefix({0.06});
  EXPECT_EQ(r.questions, 1u);  // epsilon mirrors BudgetLedger::Charge
  ledger.Commit(r, 0.06);
  EXPECT_EQ(ledger.ReservePrefix({0.06}).questions, 0u);
}

TEST(LedgeredCrowdTest, TruncatesBatchToAffordablePrefix) {
  // $0.18 at 2 cents/answer affords exactly 3 majority-3 questions
  // (worst case 3 answers each); questions 4 and 5 must come back
  // unanswered with the batch flagged truncated.
  TenantLedger ledger(0.18);
  SimulatedCrowdConfig scfg;
  scfg.error_rate = 0.0;
  scfg.seed = 3;
  SimulatedCrowd sim(scfg, [](RowId a, RowId b) { return a == b; });
  LedgeredCrowd crowd(&sim, &ledger, 0.02);

  std::vector<PairQuestion> pairs;
  for (RowId i = 0; i < 5; ++i) pairs.emplace_back(i, i);
  auto res = crowd.LabelPairs(pairs, VoteScheme::kMajority3);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->truncated);
  ASSERT_EQ(res->labels.size(), 5u);
  ASSERT_EQ(res->answers_per_question.size(), 5u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(res->labels[i]) << i;
    EXPECT_TRUE(res->Answered(i)) << i;
  }
  for (size_t i = 3; i < 5; ++i) {
    EXPECT_FALSE(res->labels[i]) << i;  // no prior votes: provisional false
    EXPECT_EQ(res->AnswersFor(i), 0u) << i;
  }
  EXPECT_EQ(crowd.truncated_batches(), 1u);
  EXPECT_EQ(sim.total_questions(), 3u);
  EXPECT_GT(ledger.spent(), 0.0);
  EXPECT_LE(ledger.spent(), 0.18 + 1e-9);
  EXPECT_NEAR(ledger.reserved(), 0.0, 1e-12);
}

TEST(LedgeredCrowdTest, RefusesBatchWhenNothingIsAffordable) {
  TenantLedger ledger(0.01);  // cannot cover even one worst-case question
  SimulatedCrowdConfig scfg;
  scfg.seed = 3;
  SimulatedCrowd sim(scfg, [](RowId, RowId) { return true; });
  LedgeredCrowd crowd(&sim, &ledger, 0.02);

  auto res = crowd.LabelPairs({{0, 0}, {1, 1}}, VoteScheme::kMajority3);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(crowd.refused_batches(), 1u);
  EXPECT_EQ(sim.total_questions(), 0u);  // the platform was never contacted
  EXPECT_NEAR(ledger.spent(), 0.0, 1e-12);
  EXPECT_NEAR(ledger.reserved(), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// EmService API basics
// ---------------------------------------------------------------------------

TEST(ServiceApiTest, SubmitAndTakeResultEdgeCases) {
  Cluster cluster(FastCluster(1));
  EmService service(&cluster);
  EXPECT_TRUE(service.RegisterTenant("t").ok());
  EXPECT_FALSE(service.RegisterTenant("t").ok());  // duplicate tenant

  GeneratedDataset data = TinyData(7);
  CrowdChain chain = PlainCrowd(7, data.truth.MakeOracle());
  ASSERT_TRUE(
      service.Submit("t", "s", &data.a, &data.b, chain.top, TinyConfig(7))
          .ok());
  // Duplicate session id.
  EXPECT_FALSE(
      service.Submit("t", "s", &data.a, &data.b, chain.top, TinyConfig(7))
          .ok());

  EXPECT_EQ(service.TakeResult("nope").status().code(), StatusCode::kNotFound);
  // Still queued: the result is not available and the session not terminal.
  EXPECT_EQ(service.TakeResult("s").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(service.FinalStatus("s").has_value());
  EXPECT_EQ(service.queued(), 1u);
  EXPECT_EQ(service.resident(), 0u);
  EXPECT_FALSE(service.idle());
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(ServiceTest, AdmissionCapHoldsUnderConcurrentSubmitsAndWorkers) {
  Cluster cluster(FastCluster(1));
  ServiceConfig scfg;
  scfg.max_resident_sessions = 2;
  scfg.min_steps_before_evict = 2;
  EmService service(&cluster, scfg);

  GeneratedDataset data = TinyData(7);
  constexpr int kSessions = 6;
  std::deque<CrowdChain> chains;
  for (int i = 0; i < kSessions; ++i) {
    chains.push_back(PlainCrowd(100 + i, data.truth.MakeOracle()));
  }

  // Three tenants submit two sessions each, concurrently.
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < 2; ++j) {
        const int i = t * 2 + j;
        std::string tenant(1, static_cast<char>('a' + t));
        Status st = service.Submit(tenant, tenant + "/" + std::to_string(j),
                                   &data.a, &data.b, chains[i].top,
                                   TinyConfig(200 + i));
        EXPECT_TRUE(st.ok()) << st.ToString();
        (void)service.queued();  // concurrent reads must be safe
        (void)service.stats();
      }
    });
  }
  for (auto& th : submitters) th.join();
  EXPECT_EQ(service.queued(), static_cast<size_t>(kSessions));

  // Drain with two workers while a monitor polls the resident count.
  std::atomic<bool> stop{false};
  size_t max_seen = 0;
  std::thread monitor([&] {
    while (!stop.load()) {
      max_seen = std::max(max_seen, service.resident());
      std::this_thread::yield();
    }
  });
  ASSERT_TRUE(service.Drain(2).ok());
  stop.store(true);
  monitor.join();

  ServiceStats stats = service.stats();
  EXPECT_LE(max_seen, scfg.max_resident_sessions);
  EXPECT_LE(stats.peak_resident, scfg.max_resident_sessions);
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.admissions, static_cast<uint64_t>(kSessions));
  // Every evicted session was eventually resumed and finished.
  EXPECT_EQ(stats.resumes, stats.evictions);
  EXPECT_GT(stats.evictions, 0u);  // 6 sessions through 2 slots must thrash
  EXPECT_TRUE(service.idle());
  for (int t = 0; t < 3; ++t) {
    for (int j = 0; j < 2; ++j) {
      std::string id =
          std::string(1, static_cast<char>('a' + t)) + "/" + std::to_string(j);
      auto result = service.TakeResult(id);
      EXPECT_TRUE(result.ok()) << id << ": " << result.status().ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Fair-share scheduling
// ---------------------------------------------------------------------------

TEST(ServiceTest, FairSharePickKeepsEqualTenantsConverged) {
  Cluster cluster(FastCluster(1));
  ServiceConfig scfg;
  scfg.max_resident_sessions = 4;  // everyone resident: pure DRR picking
  EmService service(&cluster, scfg);

  // Four equal tenants with identical workloads (same data, config, and
  // crowd seed) so any sustained vruntime gap is a scheduler bug.
  GeneratedDataset data = TinyData(7);
  const std::vector<std::string> tenants = {"t0", "t1", "t2", "t3"};
  std::deque<CrowdChain> chains;
  for (const auto& t : tenants) {
    chains.push_back(PlainCrowd(7, data.truth.MakeOracle()));
    ASSERT_TRUE(service
                    .Submit(t, t + "/job", &data.a, &data.b,
                            chains.back().top, TinyConfig(7))
                    .ok());
  }

  // Deficit-round-robin invariant: stepping always serves the min-vruntime
  // tenant, so while every tenant is live the vruntime spread can never
  // exceed the largest single-step charge seen so far.
  double max_charge = 0.0;
  for (;;) {
    auto event = service.StepOnce();
    if (!event.ok()) {
      EXPECT_EQ(event.status().code(), StatusCode::kNotFound);
      break;
    }
    max_charge = std::max(max_charge, event->charged_vtime_s);
    ServiceStats stats = service.stats();
    if (stats.completed > 0 || stats.failed > 0) continue;
    double min_vr = 0.0, max_vr = 0.0;
    for (size_t i = 0; i < tenants.size(); ++i) {
      auto ts = service.tenant_stats(tenants[i]);
      ASSERT_TRUE(ts.ok());
      min_vr = i == 0 ? ts->vruntime_s : std::min(min_vr, ts->vruntime_s);
      max_vr = i == 0 ? ts->vruntime_s : std::max(max_vr, ts->vruntime_s);
    }
    EXPECT_LE(max_vr - min_vr, max_charge + 1e-6);
  }

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, tenants.size());
  EXPECT_EQ(stats.failed, 0u);

  // Equal tenants end with (near-)equal cumulative shares.
  double min_vr = 0.0, max_vr = 0.0, min_mt = 0.0, max_mt = 0.0;
  for (size_t i = 0; i < tenants.size(); ++i) {
    auto ts = service.tenant_stats(tenants[i]);
    ASSERT_TRUE(ts.ok());
    min_vr = i == 0 ? ts->vruntime_s : std::min(min_vr, ts->vruntime_s);
    max_vr = i == 0 ? ts->vruntime_s : std::max(max_vr, ts->vruntime_s);
    min_mt = i == 0 ? ts->machine_vtime_s
                    : std::min(min_mt, ts->machine_vtime_s);
    max_mt = i == 0 ? ts->machine_vtime_s
                    : std::max(max_mt, ts->machine_vtime_s);
  }
  ASSERT_GT(min_vr, 0.0);
  ASSERT_GT(min_mt, 0.0);
  EXPECT_LE(max_vr / min_vr, 1.5);
  EXPECT_LE(max_mt / min_mt, 1.5);
}

// ---------------------------------------------------------------------------
// Budget isolation
// ---------------------------------------------------------------------------

struct RetryChain {
  std::unique_ptr<SimulatedCrowd> sim;
  std::unique_ptr<FaultyCrowd> faulty;
  std::unique_ptr<ResilientCrowd> resilient;
};

RetryChain MakeRetryChain(uint64_t seed, TruthOracle oracle) {
  RetryChain c;
  SimulatedCrowdConfig scfg;
  scfg.error_rate = 0.03;
  scfg.seed = seed;
  c.sim = std::make_unique<SimulatedCrowd>(scfg, std::move(oracle));
  FaultyCrowdConfig fcfg;
  fcfg.transient_error_rate = 0.1;
  fcfg.hit_expiry_rate = 0.1;
  fcfg.abandon_rate = 0.15;
  fcfg.spammer_rate = 0.1;
  fcfg.seed = seed + 1;
  c.faulty = std::make_unique<FaultyCrowd>(fcfg, c.sim.get());
  c.resilient =
      std::make_unique<ResilientCrowd>(ResilientCrowdConfig{}, c.faulty.get());
  return c;
}

TEST(ServiceTest, TenantLedgerNeverOverspendsUnderResilientRetries) {
  Cluster cluster(FastCluster(1));
  ServiceConfig scfg;
  scfg.max_resident_sessions = 4;
  EmService service(&cluster, scfg);

  // The two sessions demand ~$7.20 unconstrained; a $4.00 cap bites midway
  // through active learning (after both seed batches, ~$1.20 each, fit), so
  // the runs must degrade gracefully rather than fail outright.
  TenantConfig tc;
  tc.budget_cap = 4.00;
  tc.cost_per_answer = 0.02;
  ASSERT_TRUE(service.RegisterTenant("capped", tc).ok());

  // Two sessions of the capped tenant labeling concurrently, through a
  // retry/requeue stack whose faults multiply the platform calls — the
  // reservation-commit ledger must hold the cap regardless.
  GeneratedDataset d1 = TinyData(7);
  GeneratedDataset d2 = TinyData(11);
  RetryChain c1 = MakeRetryChain(21, d1.truth.MakeOracle());
  RetryChain c2 = MakeRetryChain(33, d2.truth.MakeOracle());
  ASSERT_TRUE(service
                  .Submit("capped", "capped/0", &d1.a, &d1.b,
                          c1.resilient.get(), TinyConfig(5))
                  .ok());
  ASSERT_TRUE(service
                  .Submit("capped", "capped/1", &d2.a, &d2.b,
                          c2.resilient.get(), TinyConfig(6))
                  .ok());
  ASSERT_TRUE(service.Drain(2).ok());

  auto ts = service.tenant_stats("capped");
  ASSERT_TRUE(ts.ok());
  // The invariant under test: spend never exceeds the cap, even transiently
  // reserved amounts settled above it.
  EXPECT_LE(ts->budget_spent, tc.budget_cap + 1e-6);
  EXPECT_GT(ts->budget_spent, 3.0);  // the cap was actually contended
  // Every committed dollar corresponds to answers the platform really drew.
  EXPECT_NEAR(ts->budget_spent, c1.sim->total_cost() + c2.sim->total_cost(),
              1e-6);
  // The faults did force the resilient layer to work.
  EXPECT_GT(c1.resilient->total_retries() + c2.resilient->total_retries() +
                c1.resilient->total_requeued_questions() +
                c2.resilient->total_requeued_questions(),
            0u);
  // Sessions end cleanly at the cap (the C_max contract), not with errors.
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed + stats.failed, 2u);
  EXPECT_EQ(stats.failed, 0u) << [&] {
    std::string msg;
    for (const auto& id : service.failed_sessions()) {
      msg += id + ": " + service.FinalStatus(id)->ToString() + "; ";
    }
    return msg;
  }();
  // At least one run hit the cap and recorded it (demand >> cap).
  auto r0 = service.TakeResult("capped/0");
  auto r1 = service.TakeResult("capped/1");
  ASSERT_TRUE(r0.ok() && r1.ok());
  EXPECT_TRUE(r0->metrics.budget_exhausted || r1->metrics.budget_exhausted);
}

// ---------------------------------------------------------------------------
// Evict / resume determinism
// ---------------------------------------------------------------------------

MatchResult SoloRun(const GeneratedDataset& data, const ClusterConfig& ccfg,
                    const FalconConfig& cfg) {
  Cluster cluster(ccfg);
  CrowdChain chain = PlainCrowd(cfg.seed, data.truth.MakeOracle());
  WorkflowSession session("solo", &data.a, &data.b, chain.top, &cluster, cfg);
  Status st = session.RunToCompletion();
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto r = session.TakeResult();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : MatchResult{};
}

// With an admission cap of one and eviction allowed after every step, two
// tenants' sessions ping-pong through snapshots on every scheduler turn;
// both must still finish byte-identical to uninterrupted solo runs.
void CheckEvictResume(GeneratedDataset (*make_data)(uint64_t),
                      FalconConfig (*make_config)(uint64_t), int threads) {
  SCOPED_TRACE(std::string("threads=") + std::to_string(threads));
  GeneratedDataset dx = make_data(7);
  GeneratedDataset dy = make_data(8);
  FalconConfig cfg_x = make_config(7);
  FalconConfig cfg_y = make_config(8);
  MatchResult ref_x = SoloRun(dx, FastCluster(threads), cfg_x);
  MatchResult ref_y = SoloRun(dy, FastCluster(threads), cfg_y);

  Cluster cluster(FastCluster(threads));
  ServiceConfig scfg;
  scfg.max_resident_sessions = 1;
  scfg.min_steps_before_evict = 1;
  EmService service(&cluster, scfg);
  CrowdChain cx = PlainCrowd(cfg_x.seed, dx.truth.MakeOracle());
  CrowdChain cy = PlainCrowd(cfg_y.seed, dy.truth.MakeOracle());
  ASSERT_TRUE(service.Submit("alice", "x", &dx.a, &dx.b, cx.top, cfg_x).ok());
  ASSERT_TRUE(service.Submit("bob", "y", &dy.a, &dy.b, cy.top, cfg_y).ok());
  ASSERT_TRUE(service.Drain(1).ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.peak_resident, 1u);  // memory stayed bounded by the cap
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.completed, 2u);
  ASSERT_EQ(stats.failed, 0u) << [&] {
    std::string msg;
    for (const auto& id : service.failed_sessions()) {
      msg += id + ": " + service.FinalStatus(id)->ToString() + "; ";
    }
    return msg;
  }();

  auto rx = service.TakeResult("x");
  ASSERT_TRUE(rx.ok()) << rx.status().ToString();
  ExpectSameOutcome(ref_x, *rx, "evicted/resumed session x");
  auto ry = service.TakeResult("y");
  ASSERT_TRUE(ry.ok()) << ry.status().ToString();
  ExpectSameOutcome(ref_y, *ry, "evicted/resumed session y");
}

TEST(ServiceEvictTest, MatcherOnlyPlanResumesByteIdentical) {
  for (int threads : {1, 4}) {
    CheckEvictResume(&MatcherOnlyData, &MatcherOnlyConfig, threads);
  }
}

TEST(ServiceEvictTest, BlockingPlanResumesByteIdentical) {
  for (int threads : {1, 4}) {
    CheckEvictResume(&BlockingData, &BlockingConfig, threads);
  }
}

// ---------------------------------------------------------------------------
// Bugfix regressions: SessionManager registry races (run under TSan)
// ---------------------------------------------------------------------------

TEST(SessionManagerRaceTest, RegistryUsableWhileRunAllThreadedRuns) {
  Cluster cluster(FastCluster(2));
  SessionManager manager(&cluster);
  GeneratedDataset data = TinyData(7);
  std::deque<CrowdChain> chains;
  auto create = [&](int i) {
    chains.push_back(PlainCrowd(300 + i, data.truth.MakeOracle()));
    auto created = manager.Create("s" + std::to_string(i), &data.a, &data.b,
                                  chains.back().top, TinyConfig(300 + i));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  };
  for (int i = 0; i < 3; ++i) create(i);

  // Pre-fix, Create() here reallocated the registry vector under
  // RunAllThreaded's feet and the unlocked reads raced the registration —
  // TSan flagged both.
  Status run_status;
  std::thread runner([&] { run_status = manager.RunAllThreaded(); });
  for (int i = 3; i < 6; ++i) {
    create(i);
    (void)manager.Get("s0");
    (void)manager.ids();
    (void)manager.active();
    (void)manager.size();
  }
  runner.join();
  EXPECT_TRUE(run_status.ok()) << run_status.ToString();

  // Sessions registered mid-sweep are picked up by the next call.
  Status st = manager.RunAll();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(manager.size(), 6u);
  EXPECT_EQ(manager.active(), 0u);
}

TEST(ClusterRaceTest, TotalMachineTimeReadableDuringConcurrentJobs) {
  Cluster cluster(FastCluster(2));
  SessionManager manager(&cluster);
  GeneratedDataset data = TinyData(7);
  std::deque<CrowdChain> chains;
  for (int i = 0; i < 2; ++i) {
    chains.push_back(PlainCrowd(400 + i, data.truth.MakeOracle()));
    ASSERT_TRUE(manager
                    .Create("s" + std::to_string(i), &data.a, &data.b,
                            chains.back().top, TinyConfig(400 + i))
                    .ok());
  }
  // Pre-fix, total_machine_time() returned the accumulator without taking
  // mu_ while RecordJob wrote it from pool threads.
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      volatile double s = cluster.total_machine_time().seconds;
      (void)s;
      std::this_thread::yield();
    }
  });
  Status st = manager.RunAllThreaded();
  stop.store(true);
  poller.join();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(cluster.total_machine_time().seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Bugfix regressions: first-error session id, arg parsing
// ---------------------------------------------------------------------------

TEST(SessionManagerTest, AnnotateSessionStatusPrefixesIdAndKeepsCode) {
  EXPECT_TRUE(AnnotateSessionStatus("x", Status::OK()).ok());
  Status annotated =
      AnnotateSessionStatus("job-7", Status::IoError("disk on fire"));
  EXPECT_EQ(annotated.code(), StatusCode::kIoError);
  EXPECT_EQ(annotated.message(), "session 'job-7': disk on fire");
}

TEST(SessionManagerTest, RunAllThreadedErrorNamesTheFailingSession) {
  Cluster cluster(FastCluster(1));
  SessionManager manager(&cluster);
  GeneratedDataset data = TinyData(7);
  // An invalid crowd config makes every labeling call fail, so the session
  // errors out mid-pipeline; pre-fix the returned status did not say WHICH
  // session died.
  SimulatedCrowdConfig bad = CrowdConfig(7);
  bad.questions_per_hit = 0;
  SimulatedCrowd bad_crowd(bad, data.truth.MakeOracle());
  ASSERT_TRUE(
      manager.Create("doomed", &data.a, &data.b, &bad_crowd, TinyConfig(7))
          .ok());
  Status st = manager.RunAllThreaded();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("session 'doomed'"), std::string::npos)
      << st.ToString();
}

Result<ServiceArgs> Parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "em_service";
  argv.push_back(prog.data());
  for (auto& a : args) argv.push_back(a.data());
  return ParseServiceArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(ServiceArgsTest, ValueFlagAtEndOfArgvFails) {
  // Pre-fix, a trailing `--budget` silently parsed as $0.00.
  auto parsed = Parse({"--demo", "--budget"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("requires a value"),
            std::string::npos);
}

TEST(ServiceArgsTest, UnknownFlagFails) {
  // Pre-fix, typos like `--bugdet 12` were silently dropped.
  auto parsed = Parse({"--demo", "--bugdet", "12"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unknown flag: --bugdet"),
            std::string::npos);
}

TEST(ServiceArgsTest, NonNumericValueFails) {
  EXPECT_FALSE(Parse({"--budget", "lots"}).ok());
  EXPECT_FALSE(Parse({"--tenants", "four"}).ok());
}

TEST(ServiceArgsTest, RangeAndModeChecks) {
  EXPECT_FALSE(Parse({"--tenants", "-1"}).ok());
  EXPECT_FALSE(Parse({"--tenants", "4", "--workers", "0"}).ok());
  EXPECT_FALSE(Parse({"--tenants", "4", "--interactive"}).ok());
  EXPECT_FALSE(Parse({"--tenants", "4", "--a", "left.csv"}).ok());
}

TEST(ServiceArgsTest, ValidInvocationsRoundTrip) {
  auto demo = Parse({"--demo", "--budget", "12.5", "--out", "m.csv"});
  ASSERT_TRUE(demo.ok()) << demo.status().ToString();
  EXPECT_TRUE(demo->demo);
  EXPECT_DOUBLE_EQ(demo->budget, 12.5);
  EXPECT_EQ(demo->out_path, "m.csv");

  auto multi =
      Parse({"--tenants", "8", "--workers", "3", "--max-resident", "2"});
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  EXPECT_EQ(multi->tenants, 8);
  EXPECT_EQ(multi->workers, 3);
  EXPECT_EQ(multi->max_resident, 2);
}

}  // namespace
}  // namespace falcon
