// Property tests pinning the fused matching stage to the eager path:
// LazyPairFeatures must reproduce ComputeVector bitwise (including NaN
// missing values, with and without bound token stores), and
// ApplyMatcherFused must predict exactly what GenFvs + ApplyMatcher would.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/filters.h"
#include "blocking/index_builder.h"
#include "core/apply_matcher.h"
#include "core/gen_fvs.h"
#include "learn/flat_forest.h"
#include "learn/random_forest.h"
#include "rules/feature.h"
#include "workload/generator.h"

namespace falcon {
namespace {

ClusterConfig FastCluster(int threads = 1) {
  ClusterConfig c;
  c.job_startup = VDuration::Seconds(0.5);
  c.task_overhead = VDuration::Seconds(0.01);
  c.local_threads = threads;
  return c;
}

GeneratedDataset DirtyProducts(uint64_t seed = 11) {
  WorkloadOptions opt;
  opt.size_a = 120;
  opt.size_b = 150;
  opt.seed = seed;
  opt.missing_rate = 0.1;  // exercise the NaN-missing memoization
  return GenerateProducts(opt);
}

std::vector<PairQuestion> RandomPairs(const GeneratedDataset& d, size_t n,
                                      Rng* rng) {
  std::vector<PairQuestion> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pairs.emplace_back(
        static_cast<RowId>(rng->NextBelow(d.a.num_rows())),
        static_cast<RowId>(rng->NextBelow(d.b.num_rows())));
  }
  return pairs;
}

/// Bitwise equality with NaN == NaN (what "memoized missing value" means).
bool SameValue(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return a == b;
}

// Lazy evaluation must reproduce the materialized vector bitwise, for every
// position, under arbitrary access order, with repeated reads stable and
// the computed counter tracking distinct positions only.
void CheckLazyAgainstEager(const GeneratedDataset& d, const FeatureSet& fs) {
  const std::vector<int>& ids = fs.all_ids();
  Rng rng(93);
  auto pairs = RandomPairs(d, 200, &rng);
  LazyPairFeatures lazy;  // one instance across pairs, like the fused job
  size_t nan_seen = 0;
  for (const auto& [ra, rb] : pairs) {
    FeatureVec eager = fs.ComputeVector(ids, d.a, ra, d.b, rb);
    ASSERT_EQ(eager.size(), ids.size());
    lazy.Begin(&fs, &ids, &d.a, ra, &d.b, rb);
    EXPECT_EQ(lazy.computed_count(), 0);

    // Random access order over a random subset, with duplicates.
    std::vector<int> order(ids.size());
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    size_t subset = 1 + rng.NextBelow(ids.size());
    order.resize(subset);
    for (int rep = 0; rep < 2; ++rep) {
      for (int pos : order) {
        double got = lazy.Get(pos);
        EXPECT_TRUE(SameValue(got, eager[pos]))
            << "pos=" << pos << " lazy=" << got << " eager=" << eager[pos];
        if (std::isnan(got)) ++nan_seen;
      }
      // Second sweep re-reads memoized values: the counter must not grow.
      EXPECT_EQ(lazy.computed_count(), static_cast<int>(subset));
    }
  }
  // The workload's missing_rate guarantees the NaN path actually ran.
  EXPECT_GT(nan_seen, 0u);
}

TEST(LazyPairFeaturesTest, MatchesComputeVectorUnbound) {
  auto d = DirtyProducts();
  auto fs = FeatureSet::Generate(d.a, d.b);
  CheckLazyAgainstEager(d, fs);
}

TEST(LazyPairFeaturesTest, MatchesComputeVectorWithBoundTokenStores) {
  auto d = DirtyProducts();
  auto fs = FeatureSet::Generate(d.a, d.b);
  Cluster cluster(FastCluster());
  IndexCatalog catalog;
  IndexBuilder builder(&d.a, &cluster);
  builder.EnsureTokenStores(d.b, fs, &catalog);
  fs.BindTokenStores(catalog.store(&d.a), catalog.store(&d.b));
  CheckLazyAgainstEager(d, fs);
  fs.BindTokenStores(nullptr, nullptr);
}

TEST(LazyPairFeaturesTest, CountsEachPositionOncePerPair) {
  auto d = DirtyProducts(17);
  auto fs = FeatureSet::Generate(d.a, d.b);
  const std::vector<int>& ids = fs.all_ids();
  LazyPairFeatures lazy;
  lazy.Begin(&fs, &ids, &d.a, 0, &d.b, 0);
  for (int rep = 0; rep < 3; ++rep) lazy.Get(0);
  EXPECT_EQ(lazy.computed_count(), 1);
  lazy.Get(1);
  EXPECT_EQ(lazy.computed_count(), 2);
  // A new pair invalidates the cache in O(1); the counter resets.
  lazy.Begin(&fs, &ids, &d.a, 1, &d.b, 1);
  EXPECT_EQ(lazy.computed_count(), 0);
  double v = lazy.Get(0);
  EXPECT_EQ(lazy.computed_count(), 1);
  EXPECT_TRUE(SameValue(v, fs.Compute(ids[0], d.a, 1, d.b, 1)));
}

/// Trains a matcher forest on a labeled sample of the workload's pairs.
RandomForest TrainMatcher(const GeneratedDataset& d, const FeatureSet& fs,
                          Cluster* cluster, Rng* rng) {
  auto train_pairs = RandomPairs(d, 300, rng);
  // Bias the sample toward matches so both classes are represented.
  for (uint64_t key : d.truth.keys()) {
    train_pairs.emplace_back(static_cast<RowId>(key >> 32),
                             static_cast<RowId>(key & 0xFFFFFFFFu));
    if (train_pairs.size() >= 500) break;
  }
  auto fvs = GenFvs(d.a, d.b, train_pairs, fs, fs.all_ids(), cluster);
  std::vector<char> labels;
  labels.reserve(train_pairs.size());
  for (const auto& [a, b] : train_pairs) {
    labels.push_back(d.truth.IsMatch(a, b) ? 1 : 0);
  }
  return RandomForest::Train(fvs.fvs, labels, ForestOptions{}, rng);
}

// The fused apply must agree with eager GenFvs + ApplyMatcher on 100% of
// pairs, while doing strictly less feature work than full materialization.
TEST(ApplyMatcherFusedTest, PredictionsIdenticalToEagerPath) {
  auto d = DirtyProducts(29);
  auto fs = FeatureSet::Generate(d.a, d.b);
  Cluster cluster(FastCluster());
  Rng rng(5);
  RandomForest matcher = TrainMatcher(d, fs, &cluster, &rng);
  FlatForest flat = FlatForest::Compile(matcher);
  ASSERT_TRUE(flat.EquivalentTo(matcher));

  auto pairs = RandomPairs(d, 2000, &rng);
  auto eager_fvs = GenFvs(d.a, d.b, pairs, fs, fs.all_ids(), &cluster);
  auto eager = ApplyMatcher(matcher, eager_fvs.fvs, &cluster);
  auto fused =
      ApplyMatcherFused(d.a, d.b, pairs, fs, fs.all_ids(), flat, &cluster);

  ASSERT_EQ(fused.predictions.size(), pairs.size());
  EXPECT_EQ(fused.predictions, eager.predictions);

  const FusedMatcherWork& w = fused.work;
  EXPECT_EQ(w.pairs, pairs.size());
  EXPECT_EQ(w.vector_width, fs.all_ids().size());
  EXPECT_EQ(w.num_trees, matcher.num_trees());
  EXPECT_EQ(w.used_features, flat.used_features().size());
  EXPECT_LE(w.used_features, w.vector_width);
  // Lazy evaluation: never more work than materializing every vector, and
  // bounded by the forest's used-feature set.
  EXPECT_LT(w.features_computed, w.pairs * w.vector_width);
  EXPECT_LE(w.features_computed, w.pairs * w.used_features);
  EXPECT_GT(w.features_computed, 0u);
  // Short-circuit voting: strictly fewer tree traversals than T per pair on
  // a decided majority (every unanimous vote exits at ceil(T/2) or earlier
  // than T), never more.
  EXPECT_LE(w.trees_voted, w.pairs * w.num_trees);
  EXPECT_GT(w.trees_voted, 0u);
  EXPECT_GT(fused.time.seconds, 0.0);
}

// Same predictions and counters regardless of the cluster's local thread
// count: the map tasks write disjoint prediction slots and per-split
// counters are merged in split order. Run under FALCON_SANITIZE=thread this
// also makes TSan exercise the fused job's sharing discipline.
TEST(ApplyMatcherFusedTest, DeterministicAcrossThreadCounts) {
  auto d = DirtyProducts(31);
  auto fs = FeatureSet::Generate(d.a, d.b);
  Rng rng(7);
  Cluster train_cluster(FastCluster());
  RandomForest matcher = TrainMatcher(d, fs, &train_cluster, &rng);
  FlatForest flat = FlatForest::Compile(matcher);
  auto pairs = RandomPairs(d, 1500, &rng);

  auto run = [&](int threads) {
    Cluster cluster(FastCluster(threads));
    return ApplyMatcherFused(d.a, d.b, pairs, fs, fs.all_ids(), flat,
                             &cluster);
  };
  auto serial = run(1);
  auto wide = run(4);
  EXPECT_EQ(wide.predictions, serial.predictions);
  EXPECT_EQ(wide.work.features_computed, serial.work.features_computed);
  EXPECT_EQ(wide.work.trees_voted, serial.work.trees_voted);
}

}  // namespace
}  // namespace falcon
