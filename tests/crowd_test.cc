#include <gtest/gtest.h>

#include "crowd/crowd.h"

namespace falcon {
namespace {

TruthOracle AllMatch() {
  return [](RowId, RowId) { return true; };
}

TruthOracle ParityOracle() {
  return [](RowId a, RowId b) { return (a + b) % 2 == 0; };
}

std::vector<PairQuestion> MakePairs(size_t n) {
  std::vector<PairQuestion> pairs;
  for (size_t i = 0; i < n; ++i) {
    pairs.emplace_back(static_cast<RowId>(i), static_cast<RowId>(i + 1));
  }
  return pairs;
}

TEST(CostCapTest, PaperFormulaGives349_60) {
  EXPECT_NEAR(ComputeCostCap(), 349.60, 1e-9);
}

TEST(BudgetLedgerTest, ChargesAndCaps) {
  BudgetLedger ledger(10.0);
  EXPECT_TRUE(ledger.Charge(6.0).ok());
  EXPECT_DOUBLE_EQ(ledger.spent(), 6.0);
  EXPECT_DOUBLE_EQ(ledger.remaining(), 4.0);
  Status s = ledger.Charge(5.0);
  EXPECT_EQ(s.code(), StatusCode::kBudgetExhausted);
  EXPECT_DOUBLE_EQ(ledger.spent(), 6.0);  // failed charge does not apply
  EXPECT_TRUE(ledger.Charge(4.0).ok());
}

TEST(SimulatedCrowdTest, PerfectCrowdIsAlwaysRight) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.0;
  SimulatedCrowd crowd(cfg, ParityOracle());
  auto pairs = MakePairs(50);
  auto r = crowd.LabelPairs(pairs, VoteScheme::kMajority3);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(r->labels[i], (pairs[i].first + pairs[i].second) % 2 == 0);
  }
  EXPECT_EQ(r->num_answers, 150u);  // 3 per question
  EXPECT_NEAR(r->cost, 150 * 0.02, 1e-9);
}

TEST(SimulatedCrowdTest, MajorityVoteSuppressesModerateError) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.15;
  cfg.seed = 5;
  SimulatedCrowd crowd(cfg, AllMatch());
  auto pairs = MakePairs(2000);
  auto r = crowd.LabelPairs(pairs, VoteScheme::kMajority3);
  ASSERT_TRUE(r.ok());
  size_t correct = 0;
  for (bool l : r->labels) correct += l ? 1 : 0;
  // P(majority wrong) = 3e^2(1-e) + e^3 ~= 0.061 at e=0.15.
  double accuracy = static_cast<double>(correct) / pairs.size();
  EXPECT_GT(accuracy, 0.91);
  EXPECT_LT(accuracy, 0.97);
}

TEST(SimulatedCrowdTest, StrongMajorityUsesThreeToSevenAnswers) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.3;  // force disagreement often
  cfg.seed = 9;
  SimulatedCrowd crowd(cfg, AllMatch());
  auto pairs = MakePairs(500);
  auto r = crowd.LabelPairs(pairs, VoteScheme::kStrongMajority7);
  ASSERT_TRUE(r.ok());
  double per_question =
      static_cast<double>(r->num_answers) / r->num_questions;
  EXPECT_GE(per_question, 4.0);  // minimum is 4 (4-0 sweep)
  EXPECT_LE(per_question, 7.0);
  // Strong majority beats plain majority at this error rate.
  size_t correct = 0;
  for (bool l : r->labels) correct += l ? 1 : 0;
  EXPECT_GT(static_cast<double>(correct) / pairs.size(), 0.75);
}

TEST(SimulatedCrowdTest, ZeroErrorStrongMajorityUsesFourAnswers) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.0;
  SimulatedCrowd crowd(cfg, AllMatch());
  auto r = crowd.LabelPairs(MakePairs(10), VoteScheme::kStrongMajority7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_answers, 40u);  // 4 unanimous answers decide
}

TEST(SimulatedCrowdTest, LatencyScalesWithHits) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.0;
  cfg.latency_sigma = 0.0;  // deterministic latency
  SimulatedCrowd crowd(cfg, AllMatch());
  auto r1 = crowd.LabelPairs(MakePairs(10), VoteScheme::kMajority3);
  ASSERT_TRUE(r1.ok());
  // One HIT, no jitter: exactly the mean.
  EXPECT_NEAR(r1->latency.seconds, 90.0, 1e-6);
  // HITs post in parallel: more questions, same latency (no jitter).
  auto r2 = crowd.LabelPairs(MakePairs(40), VoteScheme::kMajority3);
  ASSERT_TRUE(r2.ok());
  EXPECT_NEAR(r2->latency.seconds, 90.0, 1e-6);
}

TEST(SimulatedCrowdTest, AccountingAccumulates) {
  SimulatedCrowdConfig cfg;
  SimulatedCrowd crowd(cfg, AllMatch());
  ASSERT_TRUE(crowd.LabelPairs(MakePairs(20), VoteScheme::kMajority3).ok());
  ASSERT_TRUE(crowd.LabelPairs(MakePairs(20), VoteScheme::kMajority3).ok());
  EXPECT_EQ(crowd.total_questions(), 40u);
  EXPECT_EQ(crowd.total_answers(), 120u);
  EXPECT_NEAR(crowd.total_cost(), 120 * 0.02, 1e-9);
  EXPECT_GT(crowd.total_crowd_time().seconds, 0.0);
  crowd.ResetAccounting();
  EXPECT_EQ(crowd.total_questions(), 0u);
}

TEST(SimulatedCrowdTest, BudgetCapEnforced) {
  SimulatedCrowdConfig cfg;
  cfg.budget_cap = 1.0;  // 50 answers
  SimulatedCrowd crowd(cfg, AllMatch());
  // 20 questions x 3 answers = $1.20 > cap.
  auto r = crowd.LabelPairs(MakePairs(20), VoteScheme::kMajority3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExhausted);
}

TEST(SimulatedCrowdTest, DeterministicForSeed) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.2;
  cfg.seed = 77;
  SimulatedCrowd c1(cfg, ParityOracle());
  SimulatedCrowd c2(cfg, ParityOracle());
  auto r1 = c1.LabelPairs(MakePairs(100), VoteScheme::kMajority3);
  auto r2 = c2.LabelPairs(MakePairs(100), VoteScheme::kMajority3);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->labels, r2->labels);
  EXPECT_EQ(r1->latency.seconds, r2->latency.seconds);
}

TEST(SimulatedCrowdTest, StrongMajorityPerQuestionCountsBoundedAndTieFree) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.35;  // force long 4-3 style races
  cfg.seed = 21;
  SimulatedCrowd crowd(cfg, ParityOracle());
  auto pairs = MakePairs(400);
  auto r = crowd.LabelPairs(pairs, VoteScheme::kStrongMajority7);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->answers_per_question.size(), pairs.size());
  ASSERT_EQ(r->yes_votes.size(), pairs.size());
  size_t total_answers = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    uint32_t total = r->answers_per_question[i];
    uint32_t yes = r->yes_votes[i];
    uint32_t no = total - yes;
    // Strong majority collects between 4 (unanimous sweep) and 7 answers...
    EXPECT_GE(total, 4u);
    EXPECT_LE(total, 7u);
    // ...and can never end tied: either one side holds 4 votes, or all 7
    // (an odd count) were drawn.
    EXPECT_NE(yes, no);
    EXPECT_TRUE(yes >= 4 || no >= 4 || total == 7);
    EXPECT_EQ(r->labels[i], yes > no);
    total_answers += total;
  }
  EXPECT_EQ(r->num_answers, total_answers);  // fresh batch: no priors
}

// The latency stretch compares collected answers to the scheme's baseline.
// For strong majority that baseline is 4 — the minimum that reaches a
// 4-vote majority — so a unanimous (zero-error) batch is NOT stretched.
TEST(SimulatedCrowdTest, StrongMajorityLatencyBaselineIsFourAnswers) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.0;
  cfg.latency_sigma = 0.0;  // deterministic latency
  SimulatedCrowd crowd(cfg, AllMatch());
  auto r = crowd.LabelPairs(MakePairs(10), VoteScheme::kStrongMajority7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_answers, 40u);  // 4 unanimous answers per question
  // One HIT, no jitter, no stretch: exactly the 90 s mean (a 3-answer
  // baseline would wrongly report 120 s).
  EXPECT_NEAR(r->latency.seconds, 90.0, 1e-6);
}

TEST(SimulatedCrowdTest, RejectedBatchIsSideEffectFree) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.2;
  cfg.seed = 33;
  cfg.budget_cap = 1.0;  // 50 answers at 2 cents

  // Crowd A attempts an over-budget batch first; crowd B never does.
  SimulatedCrowd a(cfg, ParityOracle());
  SimulatedCrowd b(cfg, ParityOracle());
  auto rejected = a.LabelPairs(MakePairs(20), VoteScheme::kMajority3);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_DOUBLE_EQ(a.ledger().spent(), 0.0);
  EXPECT_EQ(a.total_answers(), 0u);

  // The rejected attempt must not have advanced the RNG: both crowds now
  // produce the identical answer/latency stream.
  auto ra = a.LabelPairs(MakePairs(10), VoteScheme::kMajority3);
  auto rb = b.LabelPairs(MakePairs(10), VoteScheme::kMajority3);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->labels, rb->labels);
  EXPECT_EQ(ra->yes_votes, rb->yes_votes);
  EXPECT_DOUBLE_EQ(ra->latency.seconds, rb->latency.seconds);
}

TEST(SimulatedCrowdTest, SaveRestoreRoundTripsAcrossFailedBatch) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.1;
  cfg.seed = 55;
  cfg.budget_cap = 2.0;
  SimulatedCrowd crowd(cfg, ParityOracle());
  ASSERT_TRUE(crowd.LabelPairs(MakePairs(15), VoteScheme::kMajority3).ok());

  std::string state = crowd.SaveState();
  // A failed (over-budget) batch leaves the platform exactly at the saved
  // state...
  ASSERT_FALSE(crowd.LabelPairs(MakePairs(60), VoteScheme::kMajority3).ok());
  EXPECT_EQ(crowd.SaveState(), state);

  // ...and a fresh platform restored from the blob continues the identical
  // stream the original produces.
  SimulatedCrowd restored(cfg, ParityOracle());
  ASSERT_TRUE(restored.RestoreState(state).ok());
  EXPECT_EQ(restored.total_answers(), crowd.total_answers());
  EXPECT_DOUBLE_EQ(restored.ledger().spent(), crowd.ledger().spent());
  auto r1 = crowd.LabelPairs(MakePairs(10), VoteScheme::kMajority3);
  auto r2 = restored.LabelPairs(MakePairs(10), VoteScheme::kMajority3);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->labels, r2->labels);
  EXPECT_DOUBLE_EQ(r1->latency.seconds, r2->latency.seconds);
}

TEST(SimulatedCrowdTest, ConfigValidationRejectsBadValues) {
  {
    SimulatedCrowdConfig cfg;
    cfg.questions_per_hit = 0;  // would divide the batch by zero
    Status st = ValidateSimulatedCrowdConfig(cfg);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    // The constructor path surfaces the same status on first use.
    SimulatedCrowd crowd(cfg, AllMatch());
    auto r = crowd.LabelPairs(MakePairs(5), VoteScheme::kMajority3);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    SimulatedCrowdConfig cfg;
    cfg.error_rate = 1.5;  // not a probability
    Status st = ValidateSimulatedCrowdConfig(cfg);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  {
    SimulatedCrowdConfig cfg;
    cfg.hit_latency_mean = VDuration::Seconds(0.0);
    Status st = ValidateSimulatedCrowdConfig(cfg);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(ValidateSimulatedCrowdConfig(SimulatedCrowdConfig{}).ok());
}

TEST(OracleCrowdTest, SequentialLatencyAndZeroCost) {
  OracleCrowdConfig cfg;
  cfg.seconds_per_pair = VDuration::Seconds(7.0);
  OracleCrowd crowd(cfg, ParityOracle());
  auto r = crowd.LabelPairs(MakePairs(30), VoteScheme::kMajority3);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->latency.seconds, 210.0, 1e-9);
  EXPECT_DOUBLE_EQ(r->cost, 0.0);
  EXPECT_EQ(r->num_answers, 30u);  // one expert, one answer each
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(r->labels[i], (i + (i + 1)) % 2 == 0);
  }
}

}  // namespace
}  // namespace falcon
