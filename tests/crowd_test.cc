#include <gtest/gtest.h>

#include "crowd/crowd.h"

namespace falcon {
namespace {

TruthOracle AllMatch() {
  return [](RowId, RowId) { return true; };
}

TruthOracle ParityOracle() {
  return [](RowId a, RowId b) { return (a + b) % 2 == 0; };
}

std::vector<PairQuestion> MakePairs(size_t n) {
  std::vector<PairQuestion> pairs;
  for (size_t i = 0; i < n; ++i) {
    pairs.emplace_back(static_cast<RowId>(i), static_cast<RowId>(i + 1));
  }
  return pairs;
}

TEST(CostCapTest, PaperFormulaGives349_60) {
  EXPECT_NEAR(ComputeCostCap(), 349.60, 1e-9);
}

TEST(BudgetLedgerTest, ChargesAndCaps) {
  BudgetLedger ledger(10.0);
  EXPECT_TRUE(ledger.Charge(6.0).ok());
  EXPECT_DOUBLE_EQ(ledger.spent(), 6.0);
  EXPECT_DOUBLE_EQ(ledger.remaining(), 4.0);
  Status s = ledger.Charge(5.0);
  EXPECT_EQ(s.code(), StatusCode::kBudgetExhausted);
  EXPECT_DOUBLE_EQ(ledger.spent(), 6.0);  // failed charge does not apply
  EXPECT_TRUE(ledger.Charge(4.0).ok());
}

TEST(SimulatedCrowdTest, PerfectCrowdIsAlwaysRight) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.0;
  SimulatedCrowd crowd(cfg, ParityOracle());
  auto pairs = MakePairs(50);
  auto r = crowd.LabelPairs(pairs, VoteScheme::kMajority3);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(r->labels[i], (pairs[i].first + pairs[i].second) % 2 == 0);
  }
  EXPECT_EQ(r->num_answers, 150u);  // 3 per question
  EXPECT_NEAR(r->cost, 150 * 0.02, 1e-9);
}

TEST(SimulatedCrowdTest, MajorityVoteSuppressesModerateError) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.15;
  cfg.seed = 5;
  SimulatedCrowd crowd(cfg, AllMatch());
  auto pairs = MakePairs(2000);
  auto r = crowd.LabelPairs(pairs, VoteScheme::kMajority3);
  ASSERT_TRUE(r.ok());
  size_t correct = 0;
  for (bool l : r->labels) correct += l ? 1 : 0;
  // P(majority wrong) = 3e^2(1-e) + e^3 ~= 0.061 at e=0.15.
  double accuracy = static_cast<double>(correct) / pairs.size();
  EXPECT_GT(accuracy, 0.91);
  EXPECT_LT(accuracy, 0.97);
}

TEST(SimulatedCrowdTest, StrongMajorityUsesThreeToSevenAnswers) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.3;  // force disagreement often
  cfg.seed = 9;
  SimulatedCrowd crowd(cfg, AllMatch());
  auto pairs = MakePairs(500);
  auto r = crowd.LabelPairs(pairs, VoteScheme::kStrongMajority7);
  ASSERT_TRUE(r.ok());
  double per_question =
      static_cast<double>(r->num_answers) / r->num_questions;
  EXPECT_GE(per_question, 4.0);  // minimum is 4 (4-0 sweep)
  EXPECT_LE(per_question, 7.0);
  // Strong majority beats plain majority at this error rate.
  size_t correct = 0;
  for (bool l : r->labels) correct += l ? 1 : 0;
  EXPECT_GT(static_cast<double>(correct) / pairs.size(), 0.75);
}

TEST(SimulatedCrowdTest, ZeroErrorStrongMajorityUsesFourAnswers) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.0;
  SimulatedCrowd crowd(cfg, AllMatch());
  auto r = crowd.LabelPairs(MakePairs(10), VoteScheme::kStrongMajority7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_answers, 40u);  // 4 unanimous answers decide
}

TEST(SimulatedCrowdTest, LatencyScalesWithHits) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.0;
  cfg.latency_sigma = 0.0;  // deterministic latency
  SimulatedCrowd crowd(cfg, AllMatch());
  auto r1 = crowd.LabelPairs(MakePairs(10), VoteScheme::kMajority3);
  ASSERT_TRUE(r1.ok());
  // One HIT, no jitter: exactly the mean.
  EXPECT_NEAR(r1->latency.seconds, 90.0, 1e-6);
  // HITs post in parallel: more questions, same latency (no jitter).
  auto r2 = crowd.LabelPairs(MakePairs(40), VoteScheme::kMajority3);
  ASSERT_TRUE(r2.ok());
  EXPECT_NEAR(r2->latency.seconds, 90.0, 1e-6);
}

TEST(SimulatedCrowdTest, AccountingAccumulates) {
  SimulatedCrowdConfig cfg;
  SimulatedCrowd crowd(cfg, AllMatch());
  ASSERT_TRUE(crowd.LabelPairs(MakePairs(20), VoteScheme::kMajority3).ok());
  ASSERT_TRUE(crowd.LabelPairs(MakePairs(20), VoteScheme::kMajority3).ok());
  EXPECT_EQ(crowd.total_questions(), 40u);
  EXPECT_EQ(crowd.total_answers(), 120u);
  EXPECT_NEAR(crowd.total_cost(), 120 * 0.02, 1e-9);
  EXPECT_GT(crowd.total_crowd_time().seconds, 0.0);
  crowd.ResetAccounting();
  EXPECT_EQ(crowd.total_questions(), 0u);
}

TEST(SimulatedCrowdTest, BudgetCapEnforced) {
  SimulatedCrowdConfig cfg;
  cfg.budget_cap = 1.0;  // 50 answers
  SimulatedCrowd crowd(cfg, AllMatch());
  // 20 questions x 3 answers = $1.20 > cap.
  auto r = crowd.LabelPairs(MakePairs(20), VoteScheme::kMajority3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExhausted);
}

TEST(SimulatedCrowdTest, DeterministicForSeed) {
  SimulatedCrowdConfig cfg;
  cfg.error_rate = 0.2;
  cfg.seed = 77;
  SimulatedCrowd c1(cfg, ParityOracle());
  SimulatedCrowd c2(cfg, ParityOracle());
  auto r1 = c1.LabelPairs(MakePairs(100), VoteScheme::kMajority3);
  auto r2 = c2.LabelPairs(MakePairs(100), VoteScheme::kMajority3);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->labels, r2->labels);
  EXPECT_EQ(r1->latency.seconds, r2->latency.seconds);
}

TEST(OracleCrowdTest, SequentialLatencyAndZeroCost) {
  OracleCrowdConfig cfg;
  cfg.seconds_per_pair = VDuration::Seconds(7.0);
  OracleCrowd crowd(cfg, ParityOracle());
  auto r = crowd.LabelPairs(MakePairs(30), VoteScheme::kMajority3);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->latency.seconds, 210.0, 1e-9);
  EXPECT_DOUBLE_EQ(r->cost, 0.0);
  EXPECT_EQ(r->num_answers, 30u);  // one expert, one answer each
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(r->labels[i], (i + (i + 1)) % 2 == 0);
  }
}

}  // namespace
}  // namespace falcon
