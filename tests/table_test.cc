#include <cmath>

#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/profile.h"
#include "table/schema.h"
#include "table/table.h"

namespace falcon {
namespace {

Schema BookSchema() {
  return Schema({{"title", AttrType::kString},
                 {"isbn", AttrType::kString},
                 {"price", AttrType::kNumeric}});
}

TEST(SchemaTest, IndexOf) {
  Schema s = BookSchema();
  EXPECT_EQ(s.num_attrs(), 3u);
  EXPECT_EQ(s.IndexOf("title"), 0);
  EXPECT_EQ(s.IndexOf("price"), 2);
  EXPECT_EQ(s.IndexOf("missing"), -1);
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(BookSchema() == BookSchema());
  Schema other({{"title", AttrType::kString}});
  EXPECT_FALSE(BookSchema() == other);
}

TEST(TableTest, AppendAndGet) {
  Table t(BookSchema());
  ASSERT_TRUE(t.AppendRow({"Dune", "978-0441", "9.99"}).ok());
  ASSERT_TRUE(t.AppendRow({"Hyperion", "", "12.50"}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Get(0, 0), "Dune");
  EXPECT_TRUE(t.IsMissing(1, 1));
  EXPECT_FALSE(t.IsMissing(0, 1));
  EXPECT_DOUBLE_EQ(t.GetNumeric(1, 2), 12.50);
}

TEST(TableTest, NumericCacheNaNForNonNumeric) {
  Table t(BookSchema());
  ASSERT_TRUE(t.AppendRow({"Dune", "978-0441", ""}).ok());
  EXPECT_TRUE(std::isnan(t.GetNumeric(0, 2)));
  EXPECT_TRUE(std::isnan(t.GetNumeric(0, 0)));  // "Dune" not numeric
}

TEST(TableTest, AppendRowWidthMismatchFails) {
  Table t(BookSchema());
  Status s = t.AppendRow({"only-one"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, ProjectSelectsRows) {
  Table t(BookSchema());
  ASSERT_TRUE(t.AppendRow({"A", "1", "1"}).ok());
  ASSERT_TRUE(t.AppendRow({"B", "2", "2"}).ok());
  ASSERT_TRUE(t.AppendRow({"C", "3", "3"}).ok());
  Table p = t.Project({2, 0});
  ASSERT_EQ(p.num_rows(), 2u);
  EXPECT_EQ(p.Get(0, 0), "C");
  EXPECT_EQ(p.Get(1, 0), "A");
  EXPECT_TRUE(p.schema() == t.schema());
}

TEST(TableTest, MemoryUsagePositiveAndGrows) {
  Table t(BookSchema());
  size_t empty = t.MemoryUsage();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        t.AppendRow({"a fairly long book title here", "isbn", "1.0"}).ok());
  }
  EXPECT_GT(t.MemoryUsage(), empty);
}

// --- CSV ---------------------------------------------------------------------

TEST(CsvTest, ParseSimpleWithHeader) {
  auto r = ReadCsvString("a,b\n1,x\n2,y\n", CsvOptions{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.value();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.schema().attr(0).name, "a");
  EXPECT_EQ(t.schema().attr(0).type, AttrType::kNumeric);
  EXPECT_EQ(t.schema().attr(1).type, AttrType::kString);
  EXPECT_EQ(t.Get(1, 1), "y");
}

TEST(CsvTest, QuotedFieldsWithCommasAndNewlines) {
  auto r = ReadCsvString(
      "name,notes\n\"Doe, John\",\"line1\nline2\"\nplain,\"he said \"\"hi\"\"\"\n",
      CsvOptions{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.value();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Get(0, 0), "Doe, John");
  EXPECT_EQ(t.Get(0, 1), "line1\nline2");
  EXPECT_EQ(t.Get(1, 1), "he said \"hi\"");
}

TEST(CsvTest, CrLfTolerated) {
  auto r = ReadCsvString("a,b\r\n1,2\r\n", CsvOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(r.value().Get(0, 1), "2");
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto r = ReadCsvString("a\n\"oops\n", CsvOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, WidthMismatchIsError) {
  auto r = ReadCsvString("a,b\n1\n", CsvOptions{});
  ASSERT_FALSE(r.ok());
}

TEST(CsvTest, RoundTrip) {
  Table t(BookSchema());
  ASSERT_TRUE(t.AppendRow({"Dune, Part 1", "978\"x\"", "9.99"}).ok());
  ASSERT_TRUE(t.AppendRow({"", "y", ""}).ok());
  std::string csv = WriteCsvString(t);
  Schema schema = t.schema();
  auto r = ReadCsvString(csv, CsvOptions{}, &schema);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& back = r.value();
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.Get(0, 0), "Dune, Part 1");
  EXPECT_EQ(back.Get(0, 1), "978\"x\"");
  EXPECT_TRUE(back.IsMissing(1, 0));
}

TEST(CsvTest, MissingValuesDoNotBreakNumericInference) {
  auto r = ReadCsvString("p\n\n1.5\n\n2.5\n", CsvOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().attr(0).type, AttrType::kNumeric);
}

// --- Profile -------------------------------------------------------------------

TEST(ProfileTest, Characteristics) {
  Schema s({{"word", AttrType::kString},
            {"short_s", AttrType::kString},
            {"medium", AttrType::kString},
            {"long_s", AttrType::kString},
            {"num", AttrType::kNumeric}});
  Table t(s);
  std::string medium = "one two three four five six seven";
  std::string long_str;
  for (int i = 0; i < 15; ++i) long_str += "word" + std::to_string(i) + " ";
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        t.AppendRow({"token", "a few words here", medium, long_str, "3.5"})
            .ok());
  }
  auto profiles = ProfileTable(t);
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].characteristic, AttrCharacteristic::kSingleWordString);
  EXPECT_EQ(profiles[1].characteristic, AttrCharacteristic::kShortString);
  EXPECT_EQ(profiles[2].characteristic, AttrCharacteristic::kMediumString);
  EXPECT_EQ(profiles[3].characteristic, AttrCharacteristic::kLongString);
  EXPECT_EQ(profiles[4].characteristic, AttrCharacteristic::kNumeric);
}

TEST(ProfileTest, MissingFraction) {
  Schema s({{"x", AttrType::kString}});
  Table t(s);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({i < 3 ? "" : "val"}).ok());
  }
  auto profiles = ProfileTable(t);
  EXPECT_NEAR(profiles[0].missing_fraction, 0.3, 1e-9);
}

TEST(ProfileTest, AllCharacteristicsHaveNames) {
  for (auto c : {AttrCharacteristic::kSingleWordString,
                 AttrCharacteristic::kShortString,
                 AttrCharacteristic::kMediumString,
                 AttrCharacteristic::kLongString, AttrCharacteristic::kNumeric}) {
    EXPECT_STRNE(AttrCharacteristicName(c), "unknown");
  }
}

}  // namespace
}  // namespace falcon
