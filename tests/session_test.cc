// Fault-injection tests of the checkpoint/recovery subsystem: kill the
// pipeline at every operator boundary of both plan templates, resume from
// the snapshot in a fresh "process" (fresh tables, fresh crowd platform),
// and require byte-identical outcomes — same matches, same candidates, same
// rule sequence, same crowd question count and cost, and zero re-asked
// (re-paid) crowd questions. Shared helpers live in session_harness.h;
// crowd_faults_test.cc re-runs the same sweeps under a fault-injecting
// crowd decorator stack.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "session_harness.h"

namespace falcon {
namespace {

// The Blocker+Matcher plan visits all 11 operators: kInit + 11 + kDone.
TEST(SessionResumeTest, BlockingPlanByteIdenticalAtEveryBoundary) {
  SweepAllBoundaries(BlockingConfig(), FastCluster(1), &BlockingData, 7, 13);
}

TEST(SessionResumeTest, BlockingPlanByteIdenticalWithFourLocalThreads) {
  SweepAllBoundaries(BlockingConfig(), FastCluster(4), &BlockingData, 7, 13);
}

// The Matcher-only plan: kInit + {gen_fvs(C), al_matcher, apply_matcher,
// estimate_accuracy} + kDone.
TEST(SessionResumeTest, MatcherOnlyPlanByteIdenticalAtEveryBoundary) {
  SweepAllBoundaries(MatcherOnlyConfig(), FastCluster(1), &MatcherOnlyData,
                     11, 6);
}

TEST(SessionResumeTest, ResumeRebuildTimeIsReportedNotCharged) {
  GeneratedDataset data = BlockingData(7);
  FalconConfig cfg = BlockingConfig();
  ReferenceRun ref = RunWithCheckpoints(data, FastCluster(1), cfg);
  // Pick the apply_block_rules boundary: indexes + token stores must be
  // rebuilt there.
  const std::string* blob = nullptr;
  for (const auto& [stage, snap] : ref.snapshots) {
    if (stage == PipelineStage::kApplyRules) blob = &snap;
  }
  ASSERT_NE(blob, nullptr);
  GeneratedDataset fresh = BlockingData(7);
  Cluster cluster{FastCluster(1)};
  SimulatedCrowd crowd(CrowdConfig(cfg.seed), fresh.truth.MakeOracle());
  auto resumed = WorkflowSession::Resume(*blob, &fresh.a, &fresh.b, &crowd,
                                         &cluster, cfg);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_GT((*resumed)->resume_rebuild_time().seconds, 0.0);
  ASSERT_TRUE((*resumed)->RunToCompletion().ok());
  auto r = (*resumed)->TakeResult();
  ASSERT_TRUE(r.ok());
  ExpectSameOutcome(ref.result, r.value(), "apply boundary");
}

TEST(SessionSnapshotTest, MetaReadbackAndIdentityChecks) {
  GeneratedDataset data = MatcherOnlyData(11);
  FalconConfig cfg = MatcherOnlyConfig();
  Cluster cluster{FastCluster(1)};
  SimulatedCrowd crowd(CrowdConfig(cfg.seed), data.truth.MakeOracle());
  WorkflowSession session("meta-test", &data.a, &data.b, &crowd, &cluster,
                          cfg);
  ASSERT_TRUE(session.Start().ok());
  ASSERT_TRUE(session.Step().ok());
  std::string blob = session.SaveSnapshot();

  auto meta = ReadSnapshotMeta(blob);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->session_id, "meta-test");
  EXPECT_EQ(meta->next, PipelineStage::kMatcherAl);
  EXPECT_FALSE(meta->used_blocking);
  EXPECT_EQ(meta->seed, cfg.seed);
  EXPECT_EQ(meta->table_a_rows, data.a.num_rows());
  EXPECT_EQ(meta->table_a_hash, data.a.ContentHash());

  // Config drift is refused.
  FalconConfig drifted = cfg;
  drifted.eval_precision_min = 0.5;
  SimulatedCrowd crowd2(CrowdConfig(cfg.seed), data.truth.MakeOracle());
  auto r1 = WorkflowSession::Resume(blob, &data.a, &data.b, &crowd2, &cluster,
                                    drifted);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  // Table drift (different content hash) is refused.
  GeneratedDataset other = MatcherOnlyData(12);
  SimulatedCrowd crowd3(CrowdConfig(cfg.seed), other.truth.MakeOracle());
  auto r2 = WorkflowSession::Resume(blob, &other.a, &other.b, &crowd3,
                                    &cluster, cfg);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionSnapshotTest, RejectsCorruptionTruncationAndFutureVersions) {
  GeneratedDataset data = MatcherOnlyData(11);
  FalconConfig cfg = MatcherOnlyConfig();
  Cluster cluster{FastCluster(1)};
  SimulatedCrowd crowd(CrowdConfig(cfg.seed), data.truth.MakeOracle());
  WorkflowSession session("sess", &data.a, &data.b, &crowd, &cluster, cfg);
  ASSERT_TRUE(session.Start().ok());
  ASSERT_TRUE(session.Step().ok());
  std::string blob = session.SaveSnapshot();

  auto try_load = [&](const std::string& bytes) {
    GeneratedDataset fresh = MatcherOnlyData(11);
    Cluster c2{FastCluster(1)};
    SimulatedCrowd cr(CrowdConfig(cfg.seed), fresh.truth.MakeOracle());
    return WorkflowSession::Resume(bytes, &fresh.a, &fresh.b, &cr, &c2, cfg)
        .status();
  };

  // Pristine blob loads.
  EXPECT_TRUE(try_load(blob).ok()) << try_load(blob).ToString();

  // A flipped byte inside a section payload fails its CRC.
  std::string corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0x5A;
  Status st = try_load(corrupt);
  ASSERT_FALSE(st.ok());

  std::string tail_corrupt = blob;
  tail_corrupt[tail_corrupt.size() - 5] ^= 0x01;
  st = try_load(tail_corrupt);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.ToString().find("CRC"), std::string::npos) << st.ToString();

  // Truncation is refused.
  st = try_load(blob.substr(0, blob.size() - 16));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);

  // A future format version is refused with a clean error.
  std::string future = blob;
  future[4] = 0x63;  // version u32 (little-endian) -> 99
  st = try_load(future);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("newer"), std::string::npos) << st.ToString();

  // Garbage is not a snapshot.
  EXPECT_FALSE(try_load("definitely not a snapshot").ok());
  EXPECT_FALSE(try_load("").ok());
}

// The crowd journal as a write-ahead log: resume from an EARLY snapshot but
// replay the full journal of the reference run — every crowd question after
// the boundary is answered from the journal, so the real platform (counted
// via its truth oracle) is never contacted and nothing is re-paid.
TEST(SessionJournalTest, FullJournalReplayAsksThePlatformNothing) {
  GeneratedDataset data = BlockingData(7);
  FalconConfig cfg = BlockingConfig();
  ReferenceRun ref = RunWithCheckpoints(data, FastCluster(1), cfg);

  auto journal = CrowdJournal::Parse(ref.wal);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_FALSE(journal->entries.empty());

  // Resume right before the blocker's active learning — nearly all crowd
  // work happens after this boundary.
  const std::string* blob = nullptr;
  for (const auto& [stage, snap] : ref.snapshots) {
    if (stage == PipelineStage::kBlockerAl) blob = &snap;
  }
  ASSERT_NE(blob, nullptr);

  GeneratedDataset fresh = BlockingData(7);
  size_t oracle_calls = 0;
  TruthOracle counting = [&](RowId a, RowId b) {
    ++oracle_calls;
    return fresh.truth.IsMatch(a, b);
  };
  Cluster cluster{FastCluster(1)};
  SimulatedCrowd crowd(CrowdConfig(cfg.seed), counting);
  auto resumed = WorkflowSession::Resume(*blob, &fresh.a, &fresh.b, &crowd,
                                         &cluster, cfg);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  WorkflowSession& session = **resumed;
  ASSERT_TRUE(session.ImportJournalTail(std::move(journal).value()).ok());

  Status st = session.RunToCompletion();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(oracle_calls, 0u) << "a journaled question was re-asked";
  EXPECT_GT(session.replayed_questions(), 0u);
  auto r = session.TakeResult();
  ASSERT_TRUE(r.ok());
  ExpectSameOutcome(ref.result, r.value(), "full-WAL replay");
}

TEST(SessionJournalTest, SerializedJournalRejectsCorruption) {
  GeneratedDataset data = MatcherOnlyData(11);
  FalconConfig cfg = MatcherOnlyConfig();
  Cluster cluster{FastCluster(1)};
  SimulatedCrowd crowd(CrowdConfig(cfg.seed), data.truth.MakeOracle());
  WorkflowSession session("j", &data.a, &data.b, &crowd, &cluster, cfg);
  ASSERT_TRUE(session.RunToCompletion().ok());
  std::string wal = session.ExportJournal();

  auto parsed = CrowdJournal::Parse(wal);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->entries.empty());
  // Round-trip is stable.
  EXPECT_EQ(parsed->Serialize(), wal);

  std::string corrupt = wal;
  corrupt[corrupt.size() / 2] ^= 0x7;
  EXPECT_FALSE(CrowdJournal::Parse(corrupt).ok());
  EXPECT_FALSE(CrowdJournal::Parse(wal.substr(0, wal.size() - 3)).ok());
  std::string future = wal;
  future[4] = 0x40;  // version field
  auto st = CrowdJournal::Parse(future).status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("newer"), std::string::npos);
}

// Two sessions sharing one cluster (and its thread pool) must each produce
// exactly what they produce alone — no cross-session leakage through the
// shared execution substrate, whether interleaved step-by-step or driven
// from concurrent threads.
TEST(SessionManagerTest, ConcurrentSessionsMatchSoloRuns) {
  FalconConfig cfg1 = MatcherOnlyConfig(3);
  FalconConfig cfg2 = MatcherOnlyConfig(19);

  auto solo = [](uint64_t data_seed, const FalconConfig& cfg) {
    GeneratedDataset data = MatcherOnlyData(data_seed);
    Cluster cluster{FastCluster(2)};
    SimulatedCrowd crowd(CrowdConfig(cfg.seed), data.truth.MakeOracle());
    WorkflowSession session("solo", &data.a, &data.b, &crowd, &cluster, cfg);
    EXPECT_TRUE(session.RunToCompletion().ok());
    auto r = session.TakeResult();
    EXPECT_TRUE(r.ok());
    return r.ok() ? std::move(r).value() : MatchResult{};
  };
  MatchResult ref1 = solo(5, cfg1);
  MatchResult ref2 = solo(6, cfg2);

  {  // Interleaved, one operator at a time, shared cluster.
    GeneratedDataset d1 = MatcherOnlyData(5), d2 = MatcherOnlyData(6);
    Cluster cluster{FastCluster(2)};
    SimulatedCrowd c1(CrowdConfig(cfg1.seed), d1.truth.MakeOracle());
    SimulatedCrowd c2(CrowdConfig(cfg2.seed), d2.truth.MakeOracle());
    SessionManager manager(&cluster);
    auto s1 = manager.Create("one", &d1.a, &d1.b, &c1, cfg1);
    auto s2 = manager.Create("two", &d2.a, &d2.b, &c2, cfg2);
    ASSERT_TRUE(s1.ok() && s2.ok());
    EXPECT_FALSE(manager.Create("one", &d1.a, &d1.b, &c1, cfg1).ok());
    EXPECT_EQ(manager.size(), 2u);
    ASSERT_TRUE(manager.RunAll().ok());
    EXPECT_EQ(manager.active(), 0u);
    auto r1 = manager.Get("one")->TakeResult();
    auto r2 = manager.Get("two")->TakeResult();
    ASSERT_TRUE(r1.ok() && r2.ok());
    ExpectSameOutcome(ref1, r1.value(), "interleaved session one");
    ExpectSameOutcome(ref2, r2.value(), "interleaved session two");
  }
  {  // Concurrent driver threads, shared cluster.
    GeneratedDataset d1 = MatcherOnlyData(5), d2 = MatcherOnlyData(6);
    Cluster cluster{FastCluster(2)};
    SimulatedCrowd c1(CrowdConfig(cfg1.seed), d1.truth.MakeOracle());
    SimulatedCrowd c2(CrowdConfig(cfg2.seed), d2.truth.MakeOracle());
    SessionManager manager(&cluster);
    ASSERT_TRUE(manager.Create("one", &d1.a, &d1.b, &c1, cfg1).ok());
    ASSERT_TRUE(manager.Create("two", &d2.a, &d2.b, &c2, cfg2).ok());
    ASSERT_TRUE(manager.RunAllThreaded().ok());
    auto r1 = manager.Get("one")->TakeResult();
    auto r2 = manager.Get("two")->TakeResult();
    ASSERT_TRUE(r1.ok() && r2.ok());
    ExpectSameOutcome(ref1, r1.value(), "threaded session one");
    ExpectSameOutcome(ref2, r2.value(), "threaded session two");
  }
}

// A snapshotted session can also re-enter through the manager.
TEST(SessionManagerTest, ResumeThroughManager) {
  GeneratedDataset data = MatcherOnlyData(11);
  FalconConfig cfg = MatcherOnlyConfig();
  ReferenceRun ref = RunWithCheckpoints(data, FastCluster(1), cfg);

  GeneratedDataset fresh = MatcherOnlyData(11);
  Cluster cluster{FastCluster(1)};
  SimulatedCrowd crowd(CrowdConfig(cfg.seed), fresh.truth.MakeOracle());
  SessionManager manager(&cluster);
  auto resumed = manager.Resume(ref.snapshots[2].second, &fresh.a, &fresh.b,
                                &crowd, cfg);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(manager.Get("ref"), *resumed);
  ASSERT_TRUE(manager.RunAll().ok());
  auto r = (*resumed)->TakeResult();
  ASSERT_TRUE(r.ok());
  ExpectSameOutcome(ref.result, r.value(), "manager resume");
}

}  // namespace
}  // namespace falcon
