#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "learn/decision_tree.h"
#include "learn/flat_forest.h"
#include "learn/random_forest.h"

namespace falcon {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Linearly separable 2D data: label = (x0 > 0.5).
void MakeSeparable(size_t n, std::vector<FeatureVec>* x,
                   std::vector<char>* y, Rng* rng) {
  for (size_t i = 0; i < n; ++i) {
    double a = rng->NextDouble();
    double b = rng->NextDouble();
    x->push_back({a, b});
    y->push_back(a > 0.5 ? 1 : 0);
  }
}

TEST(DecisionTreeTest, LearnsSeparableData) {
  Rng rng(7);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  MakeSeparable(400, &x, &y, &rng);
  auto tree = DecisionTree::Train(x, y, {}, TreeOptions{}, &rng);
  size_t correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    correct += tree.Predict(x[i]) == (y[i] != 0);
  }
  EXPECT_GT(static_cast<double>(correct) / x.size(), 0.98);
  EXPECT_GT(tree.num_leaves(), 1u);
}

TEST(DecisionTreeTest, PureDataYieldsSingleLeaf) {
  Rng rng(3);
  std::vector<FeatureVec> x = {{1.0}, {2.0}, {3.0}};
  std::vector<char> y = {1, 1, 1};
  auto tree = DecisionTree::Train(x, y, {}, TreeOptions{}, &rng);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_TRUE(tree.Predict({99.0}));
}

TEST(DecisionTreeTest, EmptyTrainingPredictsNegative) {
  Rng rng(3);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  auto tree = DecisionTree::Train(x, y, {}, TreeOptions{}, &rng);
  EXPECT_FALSE(tree.Predict({1.0}));
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  Rng rng(11);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  // XOR-ish data that wants depth.
  for (int i = 0; i < 500; ++i) {
    double a = rng.NextDouble();
    double b = rng.NextDouble();
    x.push_back({a, b});
    y.push_back(((a > 0.5) ^ (b > 0.5)) ? 1 : 0);
  }
  TreeOptions opts;
  opts.max_depth = 1;
  auto tree = DecisionTree::Train(x, y, {}, opts, &rng);
  EXPECT_LE(tree.num_leaves(), 2u);
}

TEST(DecisionTreeTest, NanRoutedToMajorityBranch) {
  Rng rng(5);
  // Feature 0 separates; most training mass is on the high side.
  std::vector<FeatureVec> x;
  std::vector<char> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({0.1});
    y.push_back(0);
  }
  for (int i = 0; i < 80; ++i) {
    x.push_back({0.9});
    y.push_back(1);
  }
  TreeOptions opts;
  opts.max_thresholds = 8;
  auto tree = DecisionTree::Train(x, y, {}, opts, &rng);
  // NaN goes with the larger (positive) side.
  EXPECT_TRUE(tree.Predict({kNaN}));
}

TEST(DecisionTreeTest, LeafMetadataFilled) {
  Rng rng(5);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  MakeSeparable(200, &x, &y, &rng);
  auto tree = DecisionTree::Train(x, y, {}, TreeOptions{}, &rng);
  for (const auto& node : tree.nodes()) {
    if (node.is_leaf) {
      EXPECT_GT(node.support, 0u);
      EXPECT_GE(node.purity, 0.5);
      EXPECT_LE(node.purity, 1.0);
    } else {
      EXPECT_GE(node.feature, 0);
      EXPECT_GE(node.left, 0);
      EXPECT_GE(node.right, 0);
    }
  }
}

TEST(DecisionTreeTest, DeterministicForSameSeed) {
  std::vector<FeatureVec> x;
  std::vector<char> y;
  {
    Rng rng(42);
    MakeSeparable(300, &x, &y, &rng);
  }
  Rng r1(9);
  Rng r2(9);
  TreeOptions opts;
  opts.features_per_split = 1;
  auto t1 = DecisionTree::Train(x, y, {}, opts, &r1);
  auto t2 = DecisionTree::Train(x, y, {}, opts, &r2);
  ASSERT_EQ(t1.nodes().size(), t2.nodes().size());
  for (size_t i = 0; i < t1.nodes().size(); ++i) {
    EXPECT_EQ(t1.nodes()[i].feature, t2.nodes()[i].feature);
    EXPECT_EQ(t1.nodes()[i].threshold, t2.nodes()[i].threshold);
  }
}

TEST(RandomForestTest, LearnsAndVotes) {
  Rng rng(13);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  MakeSeparable(500, &x, &y, &rng);
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
  EXPECT_EQ(forest.num_trees(), 10u);
  size_t correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    correct += forest.Predict(x[i]) == (y[i] != 0);
  }
  EXPECT_GT(static_cast<double>(correct) / x.size(), 0.97);
}

TEST(RandomForestTest, PositiveFractionBounds) {
  Rng rng(17);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  MakeSeparable(300, &x, &y, &rng);
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
  for (double v : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    double p = forest.PositiveFraction({v, 0.5});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // Far from the boundary the committee is confident.
  EXPECT_GT(forest.PositiveFraction({0.99, 0.5}), 0.9);
  EXPECT_LT(forest.PositiveFraction({0.01, 0.5}), 0.1);
}

TEST(RandomForestTest, DisagreementPeaksNearBoundary) {
  Rng rng(19);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  MakeSeparable(600, &x, &y, &rng);
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
  double at_boundary = forest.Disagreement({0.5, 0.5});
  double far_away = forest.Disagreement({0.95, 0.5});
  EXPECT_GE(at_boundary, far_away);
  EXPECT_GE(at_boundary, 0.0);
  EXPECT_LE(at_boundary, 1.0);
  // A unanimous committee has zero entropy.
  if (forest.PositiveFraction({0.99, 0.5}) == 1.0) {
    EXPECT_DOUBLE_EQ(forest.Disagreement({0.99, 0.5}), 0.0);
  }
}

TEST(RandomForestTest, BaggingProducesDiverseTrees) {
  Rng rng(23);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  // Noisy labels so bootstrap samples differ meaningfully.
  for (int i = 0; i < 400; ++i) {
    double a = rng.NextDouble();
    x.push_back({a, rng.NextDouble()});
    y.push_back((a > 0.5) == !rng.Bernoulli(0.2) ? 1 : 0);
  }
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
  // At least one probe point where trees disagree.
  bool any_disagreement = false;
  for (double v = 0.05; v < 1.0; v += 0.05) {
    double p = forest.PositiveFraction({v, 0.5});
    if (p > 0.0 && p < 1.0) any_disagreement = true;
  }
  EXPECT_TRUE(any_disagreement);
}

TEST(RandomForestTest, EmptyForestPredictsNegative) {
  RandomForest forest;
  EXPECT_FALSE(forest.Predict({1.0}));
  EXPECT_DOUBLE_EQ(forest.PositiveFraction({1.0}), 0.0);
}

/// A single-leaf tree with a constant prediction.
DecisionTree ConstantTree(bool prediction) {
  TreeNode leaf;
  leaf.is_leaf = true;
  leaf.prediction = prediction;
  return DecisionTree::FromNodes({leaf});
}

/// A forest of `pos` always-match trees followed by `neg` always-no trees.
RandomForest ConstantForest(int pos, int neg) {
  std::vector<DecisionTree> trees;
  for (int i = 0; i < pos; ++i) trees.push_back(ConstantTree(true));
  for (int i = 0; i < neg; ++i) trees.push_back(ConstantTree(false));
  return RandomForest(std::move(trees));
}

TEST(RandomForestTest, EvenTreeCountTieBreaksToMatch) {
  // Documented tie behavior: Predict is PositiveFraction >= 0.5, so an
  // exact 50/50 split of an even-sized committee predicts "match".
  for (int half : {1, 2, 5}) {
    RandomForest tied = ConstantForest(half, half);
    EXPECT_DOUBLE_EQ(tied.PositiveFraction({}), 0.5);
    EXPECT_TRUE(tied.Predict({})) << "tie with " << 2 * half << " trees";
    // One vote short of the tie is a "no".
    RandomForest minority = ConstantForest(half - 1, half + 1);
    EXPECT_FALSE(minority.Predict({}));
  }
}

TEST(FlatForestTest, ReproducesTieBreakExactly) {
  for (int pos = 0; pos <= 4; ++pos) {
    for (int neg = 0; neg <= 4; ++neg) {
      RandomForest forest = ConstantForest(pos, neg);
      FlatForest flat = FlatForest::Compile(forest);
      EXPECT_EQ(flat.Predict({}), forest.Predict({}))
          << pos << " match votes of " << pos + neg;
    }
  }
}

TEST(FlatForestTest, CompileIsEquivalentAndPredictsIdentically) {
  Rng rng(29);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  // Noisy data so trees disagree and NaN routing matters.
  for (int i = 0; i < 400; ++i) {
    double a = rng.NextDouble();
    double b = rng.NextDouble();
    x.push_back({a, b, rng.NextDouble()});
    y.push_back((a > 0.5) == !rng.Bernoulli(0.15) ? 1 : 0);
  }
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
  FlatForest flat = FlatForest::Compile(forest);
  EXPECT_TRUE(flat.EquivalentTo(forest));
  EXPECT_EQ(flat.num_trees(), forest.num_trees());
  size_t pool_nodes = 0;
  for (const auto& t : forest.trees()) pool_nodes += t.nodes().size();
  EXPECT_EQ(flat.num_nodes(), pool_nodes);
  // used_features is a subset of the training feature positions.
  EXPECT_FALSE(flat.used_features().empty());
  for (int f : flat.used_features()) {
    EXPECT_GE(f, 0);
    EXPECT_LT(f, 3);
  }
  for (int i = 0; i < 500; ++i) {
    FeatureVec fv = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    if (rng.Bernoulli(0.2)) fv[rng.NextBelow(3)] = kNaN;
    int voted = -1;
    EXPECT_EQ(flat.Predict(fv, &voted), forest.Predict(fv));
    EXPECT_GE(voted, 1);
    EXPECT_LE(voted, static_cast<int>(forest.num_trees()));
  }
}

TEST(FlatForestTest, EquivalentToRejectsADifferentForest) {
  Rng rng(31);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  MakeSeparable(300, &x, &y, &rng);
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
  FlatForest flat = FlatForest::Compile(forest);
  ASSERT_TRUE(flat.EquivalentTo(forest));
  EXPECT_FALSE(flat.EquivalentTo(ConstantForest(5, 5)));
  EXPECT_FALSE(flat.EquivalentTo(RandomForest()));
  EXPECT_FALSE(FlatForest::Compile(ConstantForest(2, 2)).EquivalentTo(forest));
}

TEST(FlatForestTest, ShortCircuitStopsAtDecidingVote) {
  // 10 unanimous "match" trees: 2*pos >= 10 first holds at the 5th vote
  // (the tie-break bound). 10 unanimous "no" trees: a match needs 5 of the
  // remaining votes, impossible only after the 6th "no".
  int voted = -1;
  EXPECT_TRUE(FlatForest::Compile(ConstantForest(10, 0)).Predict({}, &voted));
  EXPECT_EQ(voted, 5);
  EXPECT_FALSE(FlatForest::Compile(ConstantForest(0, 10)).Predict({}, &voted));
  EXPECT_EQ(voted, 6);
  // Odd count: majority of 11 needs 6 matches; 6 "no" votes decide a "no".
  EXPECT_TRUE(FlatForest::Compile(ConstantForest(11, 0)).Predict({}, &voted));
  EXPECT_EQ(voted, 6);
  EXPECT_FALSE(FlatForest::Compile(ConstantForest(0, 11)).Predict({}, &voted));
  EXPECT_EQ(voted, 6);
}

TEST(FlatForestTest, EmptyForestVotesZeroTreesAndPredictsNo) {
  FlatForest flat = FlatForest::Compile(RandomForest());
  int voted = -1;
  EXPECT_FALSE(flat.Predict({}, &voted));
  EXPECT_EQ(voted, 0);
  EXPECT_TRUE(flat.used_features().empty());
}

TEST(FlatForestTest, NeverReadsUnusedFeatures) {
  Rng rng(37);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  // Feature 1 carries the signal; features 0 and 2 are constant, so no
  // split can use them.
  for (int i = 0; i < 300; ++i) {
    double v = rng.NextDouble();
    x.push_back({7.0, v, 7.0});
    y.push_back(v > 0.5 ? 1 : 0);
  }
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
  FlatForest flat = FlatForest::Compile(forest);
  ASSERT_EQ(flat.used_features(), std::vector<int>{1});
  for (int i = 0; i < 100; ++i) {
    double v = rng.NextDouble();
    bool expect = forest.Predict({7.0, v, 7.0});
    // The accessor traps any read outside the used-feature set.
    bool got = flat.PredictWith([&](int pos) -> double {
      EXPECT_EQ(pos, 1);
      return v;
    });
    EXPECT_EQ(got, expect);
  }
}

}  // namespace
}  // namespace falcon
