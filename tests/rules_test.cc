#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rules/feature.h"
#include "rules/rule.h"
#include "table/table.h"
#include "workload/generator.h"

namespace falcon {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Predicate P(int pos, PredOp op, double v) {
  return Predicate{pos, pos, op, v};
}

// --- Predicate / Rule semantics ----------------------------------------------

TEST(PredicateTest, OpsAndNaN) {
  EXPECT_TRUE(P(0, PredOp::kLe, 0.5).Eval(0.5));
  EXPECT_FALSE(P(0, PredOp::kLt, 0.5).Eval(0.5));
  EXPECT_TRUE(P(0, PredOp::kGe, 0.5).Eval(0.5));
  EXPECT_FALSE(P(0, PredOp::kGt, 0.5).Eval(0.5));
  for (auto op : {PredOp::kLe, PredOp::kLt, PredOp::kGe, PredOp::kGt}) {
    EXPECT_FALSE(P(0, op, 0.5).Eval(kNaN));
  }
}

TEST(PredicateTest, ComplementInvolution) {
  for (auto op : {PredOp::kLe, PredOp::kLt, PredOp::kGe, PredOp::kGt}) {
    EXPECT_EQ(Complement(Complement(op)), op);
  }
  // Complement partitions the line: exactly one of p, p' holds on non-NaN.
  for (auto op : {PredOp::kLe, PredOp::kLt, PredOp::kGe, PredOp::kGt}) {
    for (double v : {0.3, 0.5, 0.7}) {
      Predicate p = P(0, op, 0.5);
      Predicate pc = p;
      pc.op = Complement(op);
      EXPECT_NE(p.Eval(v), pc.Eval(v)) << PredOpName(op) << " at " << v;
    }
  }
}

TEST(RuleTest, ConjunctionFires) {
  Rule r;
  r.predicates = {P(0, PredOp::kLe, 0.4), P(1, PredOp::kGt, 10.0)};
  EXPECT_TRUE(r.Fires({0.3, 15.0}));
  EXPECT_FALSE(r.Fires({0.5, 15.0}));
  EXPECT_FALSE(r.Fires({0.3, 5.0}));
  EXPECT_FALSE(r.Fires({kNaN, 15.0}));  // missing cannot prove a non-match
}

TEST(RuleTest, EmptyRuleNeverFires) {
  Rule r;
  EXPECT_FALSE(r.Fires({1.0}));
}

TEST(RuleSequenceTest, DropsIfAnyRuleFires) {
  Rule r1;
  r1.predicates = {P(0, PredOp::kLe, 0.4)};
  Rule r2;
  r2.predicates = {P(1, PredOp::kGt, 10.0)};
  RuleSequence seq;
  seq.rules = {r1, r2};
  EXPECT_TRUE(seq.Drops({0.3, 5.0}));
  EXPECT_TRUE(seq.Drops({0.9, 15.0}));
  EXPECT_FALSE(seq.Drops({0.9, 5.0}));
}

// --- CNF conversion -------------------------------------------------------------

TEST(CnfTest, KeepsIffSequenceDoesNotDrop) {
  Rng rng(31);
  Rule r1;
  r1.predicates = {P(0, PredOp::kLe, 0.4), P(1, PredOp::kGt, 0.7)};
  Rule r2;
  r2.predicates = {P(2, PredOp::kLt, 0.2)};
  RuleSequence seq;
  seq.rules = {r1, r2};
  CnfRule q = ToCnf(seq);
  ASSERT_EQ(q.clauses.size(), 2u);
  EXPECT_EQ(q.clauses[0].predicates.size(), 2u);
  for (int trial = 0; trial < 1000; ++trial) {
    FeatureVec fv = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    EXPECT_EQ(q.Keeps(fv), !seq.Drops(fv));
  }
}

TEST(CnfTest, MissingValueKeepsPair) {
  Rule r;
  r.predicates = {P(0, PredOp::kLe, 0.4)};
  RuleSequence seq;
  seq.rules = {r};
  CnfRule q = ToCnf(seq);
  EXPECT_TRUE(q.Keeps({kNaN}));
  EXPECT_FALSE(seq.Drops({kNaN}));
}

// --- Simplification -------------------------------------------------------------

TEST(SimplifyTest, FoldsRedundantBounds) {
  Rule r;
  r.predicates = {P(0, PredOp::kLt, 0.5), P(0, PredOp::kLt, 0.2),
                  P(0, PredOp::kGt, 0.05), P(1, PredOp::kGe, 3.0)};
  Rule s = SimplifyRule(r);
  // f0 keeps one upper (0.2) and one lower (0.05); f1 keeps its bound.
  EXPECT_EQ(s.predicates.size(), 3u);
  Rng rng(7);
  for (int trial = 0; trial < 1000; ++trial) {
    FeatureVec fv = {rng.NextDouble(), rng.NextDouble() * 6.0};
    EXPECT_EQ(r.Fires(fv), s.Fires(fv));
  }
}

TEST(SimplifyTest, StrictBeatsNonStrictAtEqualValue) {
  Rule r;
  r.predicates = {P(0, PredOp::kLe, 0.5), P(0, PredOp::kLt, 0.5)};
  Rule s = SimplifyRule(r);
  ASSERT_EQ(s.predicates.size(), 1u);
  EXPECT_EQ(s.predicates[0].op, PredOp::kLt);
}

TEST(SimplifyTest, PreservesMetadata) {
  Rule r;
  r.precision = 0.97;
  r.coverage = 123;
  r.selectivity = 0.8;
  r.time_per_pair = 1e-6;
  r.predicates = {P(0, PredOp::kLe, 0.4)};
  Rule s = SimplifyRule(r);
  EXPECT_DOUBLE_EQ(s.precision, 0.97);
  EXPECT_EQ(s.coverage, 123u);
}

// --- CanonicalKey ----------------------------------------------------------------

TEST(CanonicalKeyTest, OrderIndependent) {
  Rule r1;
  r1.predicates = {P(0, PredOp::kLe, 0.4), P(1, PredOp::kGt, 0.7)};
  Rule r2;
  r2.predicates = {P(1, PredOp::kGt, 0.7), P(0, PredOp::kLe, 0.4)};
  EXPECT_EQ(CanonicalKey(r1), CanonicalKey(r2));
  Rule r3;
  r3.predicates = {P(0, PredOp::kLe, 0.41), P(1, PredOp::kGt, 0.7)};
  EXPECT_NE(CanonicalKey(r1), CanonicalKey(r3));
}

// --- Rule extraction ---------------------------------------------------------------

TEST(ExtractTest, PathsToNoLeavesBecomeRules) {
  // Train a forest on data where "f0 <= 0.5 -> negative" is learnable.
  Rng rng(3);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  for (int i = 0; i < 400; ++i) {
    double v = rng.NextDouble();
    x.push_back({v});
    y.push_back(v > 0.5 ? 1 : 0);
  }
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
  std::vector<int> ids = {7};  // global feature id of position 0
  auto rules = ExtractBlockingRules(forest, ids);
  ASSERT_FALSE(rules.empty());
  for (const auto& r : rules) {
    ASSERT_FALSE(r.predicates.empty());
    EXPECT_EQ(r.predicates[0].feature_id, 7);
    // Every extracted rule must actually classify some region negative:
    // it fires on the all-low vector.
    (void)r;
  }
  // The dominant rule is roughly "f0 <= ~0.5": firing on 0.1, not on 0.9.
  size_t firing_low = 0;
  size_t firing_high = 0;
  for (const auto& r : rules) {
    if (r.Fires({0.1})) ++firing_low;
    if (r.Fires({0.9})) ++firing_high;
  }
  EXPECT_GT(firing_low, 0u);
  EXPECT_EQ(firing_high, 0u);
}

TEST(ExtractTest, RulesAreDeduplicated) {
  Rng rng(3);
  std::vector<FeatureVec> x;
  std::vector<char> y;
  for (int i = 0; i < 200; ++i) {
    double v = rng.NextDouble();
    x.push_back({v});
    y.push_back(v > 0.5 ? 1 : 0);
  }
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
  auto rules = ExtractBlockingRules(forest, {0});
  std::set<std::string> keys;
  for (const auto& r : rules) keys.insert(CanonicalKey(r));
  EXPECT_EQ(keys.size(), rules.size());
}

// --- Feature generation -------------------------------------------------------------

TEST(FeatureGenTest, ProductsSchemaFeatures) {
  WorkloadOptions opt;
  opt.size_a = 200;
  opt.size_b = 400;
  auto data = GenerateProducts(opt);
  auto fs = FeatureSet::Generate(data.a, data.b);
  EXPECT_GT(fs.size(), 10u);
  EXPECT_GT(fs.blocking_ids().size(), 5u);
  EXPECT_GT(fs.all_ids().size(), fs.blocking_ids().size());
  // Numeric attribute price must yield abs_diff/rel_diff features.
  bool has_absdiff = false;
  bool has_jaccard_title = false;
  for (const auto& f : fs.features()) {
    if (f.fn == SimFunction::kAbsDiff) has_absdiff = true;
    if (f.fn == SimFunction::kJaccard &&
        f.name.find("title") != std::string::npos) {
      has_jaccard_title = true;
    }
    if (!f.usable_for_blocking) {
      EXPECT_FALSE(UsableForBlocking(f.fn)) << f.name;
    }
  }
  EXPECT_TRUE(has_absdiff);
  EXPECT_TRUE(has_jaccard_title);
}

TEST(FeatureGenTest, ComputeHandlesMissing) {
  Schema schema({{"name", AttrType::kString}});
  Table a(schema);
  Table b(schema);
  ASSERT_TRUE(a.AppendRow({"widget"}).ok());
  ASSERT_TRUE(b.AppendRow({""}).ok());
  ASSERT_TRUE(b.AppendRow({"widget"}).ok());
  auto fs = FeatureSet::Generate(a, b);
  ASSERT_GT(fs.size(), 0u);
  EXPECT_TRUE(std::isnan(fs.Compute(0, a, 0, b, 0)));
  // Identical values give maximal similarity on every feature.
  for (int id : fs.all_ids()) {
    double v = fs.Compute(id, a, 0, b, 1);
    EXPECT_FALSE(std::isnan(v)) << fs.feature(id).name;
  }
}

TEST(FeatureGenTest, VectorLayoutFollowsIds) {
  WorkloadOptions opt;
  opt.size_a = 50;
  opt.size_b = 50;
  auto data = GenerateProducts(opt);
  auto fs = FeatureSet::Generate(data.a, data.b);
  auto fv = fs.ComputeVector(fs.blocking_ids(), data.a, 0, data.b, 0);
  ASSERT_EQ(fv.size(), fs.blocking_ids().size());
  for (size_t i = 0; i < fv.size(); ++i) {
    double direct = fs.Compute(fs.blocking_ids()[i], data.a, 0, data.b, 0);
    if (std::isnan(direct)) {
      EXPECT_TRUE(std::isnan(fv[i]));
    } else {
      EXPECT_DOUBLE_EQ(fv[i], direct);
    }
  }
}

TEST(FeatureGenTest, MatcherOnlyFlagExcludesSlowFunctions) {
  WorkloadOptions opt;
  opt.size_a = 50;
  opt.size_b = 50;
  auto data = GenerateProducts(opt);
  FeatureGenOptions gen;
  gen.include_matcher_only = false;
  auto fs = FeatureSet::Generate(data.a, data.b, gen);
  for (const auto& f : fs.features()) {
    EXPECT_TRUE(f.usable_for_blocking) << f.name;
  }
}

}  // namespace
}  // namespace falcon
