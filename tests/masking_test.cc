// Integration tests for the crowd-time masking semantics (Section 10.2):
// the Table-5 ordering invariants and the per-operator accounting rules.
#include <map>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "workload/generator.h"
#include "workload/quality.h"

namespace falcon {
namespace {

ClusterConfig FastCluster() {
  ClusterConfig c;
  c.job_startup = VDuration::Seconds(0.5);
  c.task_overhead = VDuration::Seconds(0.01);
  return c;
}

FalconConfig BaseConfig() {
  FalconConfig cfg;
  cfg.sample_size = 5000;
  cfg.al_max_iterations = 10;
  cfg.max_rules_to_eval = 8;
  cfg.matcher_only_max_bytes = 1 << 20;
  cfg.seed = 7;
  return cfg;
}

RunMetrics RunWith(bool masking, bool o1, bool o2, bool o3) {
  WorkloadOptions opt;
  opt.size_a = 250;
  opt.size_b = 750;
  opt.seed = 7;
  auto data = GenerateProducts(opt);
  Cluster cluster(FastCluster());
  SimulatedCrowdConfig ccfg;
  ccfg.error_rate = 0.02;
  ccfg.seed = 7;
  SimulatedCrowd crowd(ccfg, data.truth.MakeOracle());
  FalconConfig cfg = BaseConfig();
  cfg.enable_masking = masking;
  cfg.mask_index_building = o1;
  cfg.mask_speculative_execution = o2;
  cfg.mask_pair_selection = o3;
  FalconPipeline pipeline(&data.a, &data.b, &crowd, &cluster, cfg);
  auto r = pipeline.Run();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r->metrics : RunMetrics{};
}

TEST(MaskingTest, Table5OrderingInvariants) {
  RunMetrics u = RunWith(false, false, false, false);
  RunMetrics o = RunWith(true, true, true, true);
  // Full masking never exceeds the unmasked critical path. (Virtual times
  // carry some measurement noise; allow a small tolerance.)
  double slack = 0.1 * u.machine_unmasked.seconds + 2.0;
  EXPECT_LE(o.machine_unmasked.seconds, u.machine_unmasked.seconds + slack);
  // With everything off, no machine time is hidden.
  EXPECT_NEAR(u.machine_unmasked.seconds, u.machine_time.seconds,
              1e-6 * u.machine_time.seconds + 1e-6);
  // With masking on, some machine work was actually hidden.
  EXPECT_LT(o.machine_unmasked.seconds, o.machine_time.seconds);
}

TEST(MaskingTest, AblationsLieBetween) {
  RunMetrics u = RunWith(false, false, false, false);
  RunMetrics o1_off = RunWith(true, false, true, true);
  // An ablated run still masks (other optimizations run), so it cannot be
  // better than... it CAN tie full masking if the ablated optimization had
  // nothing to hide; it must not exceed the fully unmasked time by more
  // than noise.
  double slack = 0.15 * u.machine_unmasked.seconds + 2.0;
  EXPECT_LE(o1_off.machine_unmasked.seconds,
            u.machine_unmasked.seconds + slack);
  EXPECT_LE(o1_off.machine_unmasked.seconds,
            o1_off.machine_time.seconds + 1e-9);
}

TEST(MaskingTest, OperatorRowsAccounting) {
  RunMetrics m = RunWith(true, true, true, true);
  ASSERT_FALSE(m.operators.empty());
  std::map<std::string, int> seen;
  VDuration sum_raw;
  VDuration sum_unmasked;
  for (const auto& op : m.operators) {
    ++seen[op.name];
    EXPECT_LE(op.unmasked.seconds, op.raw.seconds + 1e-9) << op.name;
    if (!op.is_crowd) {
      sum_raw += op.raw;
      sum_unmasked += op.unmasked;
    }
  }
  // The canonical plan stages all appear exactly once.
  for (const char* required :
       {"sample_pairs", "gen_fvs", "al_matcher(blocker)", "get_block_rules",
        "eval_rules", "sel_opt_seq", "apply_block_rules", "gen_fvs(C)",
        "al_matcher(matcher)", "apply_matcher"}) {
    EXPECT_EQ(seen[required], 1) << required;
  }
  // Machine rows account for all machine time except the al_matcher rows'
  // embedded machine parts (selection/training live inside crowd rows).
  EXPECT_LE(sum_unmasked.seconds, m.machine_unmasked.seconds + 1e-6);
  EXPECT_LE(sum_raw.seconds, m.machine_time.seconds + 1e-6);
  // Index building appeared as masked work.
  EXPECT_GE(seen["index_build(generic,masked)"] +
                seen["index_build(rules,masked)"],
            1);
}

TEST(MaskingTest, MaskedIndexBuildFullyHiddenUnderAmpleCrowdTime) {
  // At MTurk-scale latency the crowd bank dwarfs index-build time, so the
  // masked index rows should show (near-)zero unmasked time.
  RunMetrics m = RunWith(true, true, true, true);
  for (const auto& op : m.operators) {
    if (op.name.rfind("index_build(generic", 0) == 0 ||
        op.name.rfind("index_build(rules", 0) == 0) {
      EXPECT_LT(op.unmasked.seconds, op.raw.seconds * 0.5 + 0.5) << op.name;
    }
  }
}

TEST(MaskingTest, SpeculativeExecutionReusedUnderAmpleCrowdTime) {
  // With MTurk-scale crowd latency the mask window comfortably covers
  // speculative execution of every candidate rule, and the selected
  // sequence's rules are a subset of those candidates — so Algorithm 2 must
  // find a completed output to reuse.
  RunMetrics m = RunWith(true, true, true, true);
  EXPECT_GT(m.speculated_rules, 0);
  EXPECT_TRUE(m.spec_rule_reused);
  // And the reuse keeps apply_block_rules' unmasked cost below its raw
  // fresh-execution cost recorded in the unmasked run.
  RunMetrics u = RunWith(false, false, false, false);
  VDuration masked_apply;
  VDuration unmasked_apply;
  for (const auto& op : m.operators) {
    if (op.name == "apply_block_rules") masked_apply = op.unmasked;
  }
  for (const auto& op : u.operators) {
    if (op.name == "apply_block_rules") unmasked_apply = op.unmasked;
  }
  EXPECT_GT(unmasked_apply.seconds, 0.0);
  EXPECT_LE(masked_apply.seconds, unmasked_apply.seconds * 3.0 + 2.0);
}

TEST(MaskingTest, TotalsAreConsistentAcrossConfigs) {
  for (bool masking : {false, true}) {
    RunMetrics m = RunWith(masking, masking, masking, masking);
    EXPECT_NEAR(m.total_time.seconds,
                m.crowd_time.seconds + m.machine_unmasked.seconds, 1e-6);
    EXPECT_LE(m.machine_unmasked.seconds, m.machine_time.seconds + 1e-9);
    EXPECT_GT(m.crowd_time.seconds, 0.0);
  }
}

}  // namespace
}  // namespace falcon
