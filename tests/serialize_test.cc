#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "learn/flat_forest.h"
#include "rules/serialize.h"
#include "workload/generator.h"

namespace falcon {
namespace {

struct SerializeFixture {
  GeneratedDataset data;
  FeatureSet fs;

  SerializeFixture() {
    WorkloadOptions opt;
    opt.size_a = 120;
    opt.size_b = 300;
    opt.seed = 5;
    data = GenerateProducts(opt);
    fs = FeatureSet::Generate(data.a, data.b);
  }

  RuleSequence MakeSequence() {
    int f0 = fs.blocking_ids()[0];
    int f1 = fs.blocking_ids()[1];
    RuleSequence seq;
    Rule r1;
    r1.predicates = {{0, f0, PredOp::kLe, 0.43210987}};
    r1.precision = 0.97;
    r1.coverage = 1234;
    r1.selectivity = 0.12;
    r1.time_per_pair = 3.5e-7;
    Rule r2;
    r2.predicates = {{0, f0, PredOp::kGt, 0.1},
                     {1, f1, PredOp::kLt, 2.5}};
    r2.precision = 0.99;
    seq.rules = {r1, r2};
    seq.selectivity = 0.08;
    return seq;
  }
};

TEST(SerializeRulesTest, RoundTripPreservesEverything) {
  SerializeFixture fx;
  RuleSequence seq = fx.MakeSequence();
  std::string text = SerializeRuleSequence(seq, fx.fs);
  auto back = ParseRuleSequence(text, fx.fs);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->rules.size(), seq.rules.size());
  EXPECT_DOUBLE_EQ(back->selectivity, seq.selectivity);
  for (size_t i = 0; i < seq.rules.size(); ++i) {
    EXPECT_EQ(CanonicalKey(back->rules[i]), CanonicalKey(seq.rules[i]));
    EXPECT_DOUBLE_EQ(back->rules[i].precision, seq.rules[i].precision);
    EXPECT_EQ(back->rules[i].coverage, seq.rules[i].coverage);
    EXPECT_DOUBLE_EQ(back->rules[i].time_per_pair,
                     seq.rules[i].time_per_pair);
    for (size_t p = 0; p < seq.rules[i].predicates.size(); ++p) {
      EXPECT_EQ(back->rules[i].predicates[p].feature_id,
                seq.rules[i].predicates[p].feature_id);
      EXPECT_EQ(back->rules[i].predicates[p].op,
                seq.rules[i].predicates[p].op);
      EXPECT_DOUBLE_EQ(back->rules[i].predicates[p].value,
                       seq.rules[i].predicates[p].value);
    }
  }
}

TEST(SerializeRulesTest, RejectsBadInput) {
  SerializeFixture fx;
  EXPECT_FALSE(ParseRuleSequence("", fx.fs).ok());
  EXPECT_FALSE(ParseRuleSequence("not-a-header\nend\n", fx.fs).ok());
  EXPECT_FALSE(
      ParseRuleSequence("falcon-rules v1\nseq selectivity 0.5\n", fx.fs)
          .ok());  // missing end
  EXPECT_FALSE(ParseRuleSequence(
                   "falcon-rules v1\npred bogus_feature 0 0.5\nend\n", fx.fs)
                   .ok());  // pred before rule
  auto r = ParseRuleSequence(
      "falcon-rules v1\n"
      "rule precision 0.9 coverage 10 selectivity 0.5 time 1e-6\n"
      "pred no_such_feature(x,y) 0 0.5\nend\n",
      fx.fs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SerializeForestTest, RoundTripPredictsIdentically) {
  SerializeFixture fx;
  // Train a real forest on blocking feature vectors.
  std::vector<FeatureVec> x;
  std::vector<char> y;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    RowId a = static_cast<RowId>(rng.NextBelow(fx.data.a.num_rows()));
    RowId b = static_cast<RowId>(rng.NextBelow(fx.data.b.num_rows()));
    x.push_back(
        fx.fs.ComputeVector(fx.fs.blocking_ids(), fx.data.a, a, fx.data.b, b));
    y.push_back(fx.data.truth.IsMatch(a, b) ? 1 : 0);
  }
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);

  std::string text = SerializeForest(forest, fx.fs.blocking_ids(), fx.fs);
  std::vector<int> layout;
  auto back = ParseForest(text, fx.fs, &layout);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(layout, fx.fs.blocking_ids());
  EXPECT_EQ(back->num_trees(), forest.num_trees());
  for (const auto& fv : x) {
    EXPECT_EQ(back->Predict(fv), forest.Predict(fv));
    EXPECT_DOUBLE_EQ(back->PositiveFraction(fv),
                     forest.PositiveFraction(fv));
  }
}

TEST(SerializeForestTest, RoundTripPreservesExtractedRules) {
  SerializeFixture fx;
  std::vector<FeatureVec> x;
  std::vector<char> y;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    double v = rng.NextDouble();
    x.push_back({v, rng.NextDouble()});
    y.push_back(v > 0.5 ? 1 : 0);
  }
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
  std::vector<int> ids = {fx.fs.blocking_ids()[0], fx.fs.blocking_ids()[1]};
  std::string text = SerializeForest(forest, ids, fx.fs);
  std::vector<int> layout;
  auto back = ParseForest(text, fx.fs, &layout);
  ASSERT_TRUE(back.ok());
  auto rules_orig = ExtractBlockingRules(forest, ids);
  auto rules_back = ExtractBlockingRules(*back, layout);
  ASSERT_EQ(rules_orig.size(), rules_back.size());
  for (size_t i = 0; i < rules_orig.size(); ++i) {
    EXPECT_EQ(CanonicalKey(rules_orig[i]), CanonicalKey(rules_back[i]));
  }
}

TEST(SerializeForestTest, RejectsCorruptForests) {
  SerializeFixture fx;
  std::vector<int> layout;
  EXPECT_FALSE(ParseForest("", fx.fs, &layout).ok());
  EXPECT_FALSE(ParseForest("falcon-forest v1\nfeatures 0\ntrees 1\n"
                           "tree 1\nleaf 1 1.0 5\n",
                           fx.fs, &layout)
                   .ok());  // missing end
  // Out-of-range child link.
  std::string bad =
      "falcon-forest v1\nfeatures 1\nf " + fx.fs.feature(0).name +
      "\ntrees 1\ntree 1\nsplit 0 0.5 1 3 4\nend\n";
  auto r = ParseForest(bad, fx.fs, &layout);
  ASSERT_FALSE(r.ok());
}

// Missing-value splits are real in this codebase (set-similarity features
// are NaN when either side has no tokens), and a trained tree can place a
// non-finite threshold. "%.17g" of NaN is platform-dependent, so the format
// normalizes non-finite values to fixed tokens; round-trip must be exact.
TEST(SerializeForestTest, NonFiniteThresholdsRoundTrip) {
  SerializeFixture fx;
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();

  TreeNode split;  // NaN threshold: every comparison is false -> NaN path
  split.is_leaf = false;
  split.feature = 0;
  split.threshold = kNan;
  split.nan_goes_left = false;
  split.left = 1;
  split.right = 2;
  TreeNode yes, no;
  yes.prediction = true;
  yes.purity = 0.875;
  yes.support = 7;
  no.prediction = false;
  no.purity = 1.0;
  no.support = 3;
  TreeNode inf_split = split;
  inf_split.threshold = kInf;
  TreeNode ninf_split = split;
  ninf_split.threshold = -kInf;
  RandomForest forest({DecisionTree::FromNodes({split, yes, no}),
                       DecisionTree::FromNodes({inf_split, yes, no}),
                       DecisionTree::FromNodes({ninf_split, yes, no})});

  std::vector<int> ids = {fx.fs.blocking_ids()[0]};
  std::string text = SerializeForest(forest, ids, fx.fs);
  std::vector<int> layout;
  auto back = ParseForest(text, fx.fs, &layout);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_trees(), 3u);
  const auto& n0 = back->trees()[0].nodes()[0];
  EXPECT_TRUE(std::isnan(n0.threshold));
  EXPECT_FALSE(n0.nan_goes_left);
  EXPECT_EQ(back->trees()[1].nodes()[0].threshold, kInf);
  EXPECT_EQ(back->trees()[2].nodes()[0].threshold, -kInf);
  // Behavior is preserved on missing and present values alike.
  for (double v : {kNan, 0.0, 1.0, -5.0}) {
    FeatureVec fv = {v};
    EXPECT_EQ(back->Predict(fv), forest.Predict(fv)) << v;
  }
}

TEST(SerializeRulesTest, NonFinitePredicateValuesRoundTrip) {
  SerializeFixture fx;
  RuleSequence seq;
  Rule r;
  r.predicates = {{0, fx.fs.blocking_ids()[0], PredOp::kLe,
                   std::numeric_limits<double>::quiet_NaN()},
                  {1, fx.fs.blocking_ids()[1], PredOp::kGt,
                   -std::numeric_limits<double>::infinity()}};
  r.precision = 0.96;
  seq.rules = {r};
  std::string text = SerializeRuleSequence(seq, fx.fs);
  auto back = ParseRuleSequence(text, fx.fs);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->rules.size(), 1u);
  EXPECT_TRUE(std::isnan(back->rules[0].predicates[0].value));
  EXPECT_EQ(back->rules[0].predicates[1].value,
            -std::numeric_limits<double>::infinity());
}

TEST(SerializeForestTest, EmptyForestRoundTrips) {
  SerializeFixture fx;
  RandomForest empty;
  std::string text = SerializeForest(empty, {}, fx.fs);
  std::vector<int> layout;
  auto back = ParseForest(text, fx.fs, &layout);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_trees(), 0u);
  EXPECT_TRUE(layout.empty());
}

TEST(SerializeRulesTest, ZeroRuleSequenceRoundTrips) {
  SerializeFixture fx;
  RuleSequence seq;  // no rules (e.g. a matcher-only run)
  seq.selectivity = 1.0;
  std::string text = SerializeRuleSequence(seq, fx.fs);
  auto back = ParseRuleSequence(text, fx.fs);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->rules.empty());
  EXPECT_DOUBLE_EQ(back->selectivity, 1.0);
}

// The fused matching stage compiles the deserialized forest; compilation
// must agree with the node-pool form after a round trip (it checks
// structural equivalence internally, and predictions must match too).
TEST(SerializeForestTest, FlatForestCompileAfterDeserializeIsEquivalent) {
  SerializeFixture fx;
  std::vector<FeatureVec> x;
  std::vector<char> y;
  Rng rng(13);
  for (int i = 0; i < 250; ++i) {
    RowId a = static_cast<RowId>(rng.NextBelow(fx.data.a.num_rows()));
    RowId b = static_cast<RowId>(rng.NextBelow(fx.data.b.num_rows()));
    x.push_back(fx.fs.ComputeVector(fx.fs.all_ids(), fx.data.a, a, fx.data.b,
                                    b));
    y.push_back(fx.data.truth.IsMatch(a, b) ? 1 : 0);
  }
  auto forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
  std::string text = SerializeForest(forest, fx.fs.all_ids(), fx.fs);
  std::vector<int> layout;
  auto back = ParseForest(text, fx.fs, &layout);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  FlatForest flat = FlatForest::Compile(*back);
  EXPECT_TRUE(flat.EquivalentTo(forest));
  for (const auto& fv : x) {
    EXPECT_EQ(flat.Predict(fv), forest.Predict(fv));
  }
}

}  // namespace
}  // namespace falcon
