#include <gtest/gtest.h>

#include "core/accuracy_estimator.h"
#include "core/pipeline.h"
#include "workload/generator.h"
#include "workload/quality.h"

namespace falcon {
namespace {

// Synthetic candidate set with known composition:
//   predicted positives: 400 pairs, 90% truly matching
//   predicted negatives: 1600 pairs, 5% truly matching (false negatives)
struct EstimatorFixture {
  std::vector<CandidatePair> candidates;
  std::vector<char> predictions;
  GroundTruth truth;

  EstimatorFixture() {
    uint32_t id = 0;
    for (int i = 0; i < 400; ++i, ++id) {
      candidates.emplace_back(id, id);
      predictions.push_back(1);
      if (i % 10 != 0) truth.Add(id, id);  // 90% precise
    }
    for (int i = 0; i < 1600; ++i, ++id) {
      candidates.emplace_back(id, id);
      predictions.push_back(0);
      if (i % 20 == 0) truth.Add(id, id);  // 5% false negatives
    }
  }

  double TruePrecision() const { return 0.9; }
  double TrueRecall() const {
    double tp = 360.0;
    double fn = 80.0;
    return tp / (tp + fn);
  }
};

TEST(AccuracyEstimatorTest, EstimatesMatchKnownComposition) {
  EstimatorFixture fx;
  SimulatedCrowdConfig ccfg;
  ccfg.error_rate = 0.0;
  SimulatedCrowd crowd(ccfg, fx.truth.MakeOracle());
  AccuracyEstimatorOptions opts;
  opts.sample_per_stratum = 250;
  Rng rng(3);
  auto est = EstimateAccuracy(fx.candidates, fx.predictions, &crowd, opts,
                              &rng);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_NEAR(est->precision, fx.TruePrecision(), est->precision_margin)
      << "margin " << est->precision_margin;
  EXPECT_NEAR(est->recall, fx.TrueRecall(), est->recall_margin + 0.05);
  EXPECT_GT(est->precision_margin, 0.0);
  EXPECT_LT(est->precision_margin, 0.1);
  EXPECT_EQ(est->labeled_positives, 250u);
  EXPECT_EQ(est->labeled_negatives, 250u);
  EXPECT_GT(est->cost, 0.0);
  EXPECT_GT(est->crowd_time.seconds, 0.0);
}

TEST(AccuracyEstimatorTest, SmallStrataWidenMargins) {
  EstimatorFixture fx;
  SimulatedCrowdConfig ccfg;
  ccfg.error_rate = 0.0;
  auto run = [&](size_t n) {
    SimulatedCrowd crowd(ccfg, fx.truth.MakeOracle());
    AccuracyEstimatorOptions opts;
    opts.sample_per_stratum = n;
    Rng rng(3);
    auto est = EstimateAccuracy(fx.candidates, fx.predictions, &crowd, opts,
                                &rng);
    EXPECT_TRUE(est.ok());
    return est->precision_margin;
  };
  EXPECT_GT(run(30), run(300));
}

TEST(AccuracyEstimatorTest, NoPredictedMatchesIsError) {
  std::vector<CandidatePair> cands = {{1, 1}, {2, 2}};
  std::vector<char> preds = {0, 0};
  SimulatedCrowd crowd(SimulatedCrowdConfig{},
                       [](RowId, RowId) { return false; });
  Rng rng(1);
  auto est = EstimateAccuracy(cands, preds, &crowd,
                              AccuracyEstimatorOptions{}, &rng);
  ASSERT_FALSE(est.ok());
  EXPECT_EQ(est.status().code(), StatusCode::kInvalidArgument);
}

TEST(AccuracyEstimatorTest, SizeMismatchRejected) {
  std::vector<CandidatePair> cands = {{1, 1}};
  std::vector<char> preds = {1, 0};
  SimulatedCrowd crowd(SimulatedCrowdConfig{},
                       [](RowId, RowId) { return false; });
  Rng rng(1);
  auto est = EstimateAccuracy(cands, preds, &crowd,
                              AccuracyEstimatorOptions{}, &rng);
  ASSERT_FALSE(est.ok());
}

TEST(AccuracyEstimatorTest, PipelineIntegration) {
  WorkloadOptions opt;
  opt.size_a = 250;
  opt.size_b = 700;
  opt.seed = 13;
  auto data = GenerateProducts(opt);
  Cluster cluster{ClusterConfig{}};
  SimulatedCrowdConfig ccfg;
  ccfg.error_rate = 0.0;
  SimulatedCrowd crowd(ccfg, data.truth.MakeOracle());
  FalconConfig cfg;
  cfg.sample_size = 5000;
  cfg.matcher_only_max_bytes = 1 << 20;
  cfg.estimate_accuracy = true;
  cfg.accuracy.sample_per_stratum = 60;
  FalconPipeline pipeline(&data.a, &data.b, &crowd, &cluster, cfg);
  auto r = pipeline.Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->metrics.has_accuracy_estimate);
  // With a perfect crowd, the hands-off estimate should bracket the true
  // precision (computed from generator ground truth).
  auto q = EvaluateMatches(r->matches, data.truth);
  EXPECT_NEAR(r->metrics.accuracy.precision, q.precision,
              r->metrics.accuracy.precision_margin + 0.05);
  // The estimator's crowd work is accounted in the run metrics.
  bool found_op = false;
  for (const auto& op : r->metrics.operators) {
    if (op.name == "estimate_accuracy") found_op = true;
  }
  EXPECT_TRUE(found_op);
}

TEST(SamplerAblationTest, UniformSamplingFindsFarFewerPositives) {
  WorkloadOptions opt;
  opt.size_a = 300;
  opt.size_b = 900;
  opt.seed = 3;
  auto data = GenerateProducts(opt);
  Cluster cluster{ClusterConfig{}};
  auto count_matches = [&](SampleStrategy s) {
    Rng rng(1);
    auto r = SamplePairs(data.a, data.b, 6000, 50, &cluster, &rng, s);
    EXPECT_TRUE(r.ok());
    size_t m = 0;
    for (auto [a, b] : r->pairs) m += data.truth.IsMatch(a, b) ? 1 : 0;
    return m;
  };
  size_t biased = count_matches(SampleStrategy::kTokenBiased);
  size_t uniform = count_matches(SampleStrategy::kUniformRandom);
  EXPECT_GT(biased, 3 * (uniform + 1));
}

}  // namespace
}  // namespace falcon
