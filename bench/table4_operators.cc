// Table 4: Falcon's run times per operator (first run of each data set).
//
// Paper shape: sample_pairs / gen_fvs / get_block_rules / sel_opt_seq /
// apply_matcher finish in seconds-to-minutes; the two crowd operators
// (al_matcher, eval_rules) dominate; apply_block_rules is largely masked
// to ~0 (its unmasked-equivalent time shown in parentheses).
#include <cstdio>

#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  double error = flags.GetDouble("error", 0.05);
  uint64_t seed = flags.GetInt("seed", 100);

  std::printf(
      "=== Table 4: per-operator run times (first run per dataset) ===\n"
      "Machine rows show 'unmasked (raw)': raw is the operator's full\n"
      "machine time, unmasked its critical-path share after masking.\n\n");
  BenchReport report("table4_operators");
  report.Add("scale", scale);

  for (const char* name : {"products", "songs", "citations"}) {
    auto data = GenerateByName(name, DatasetOptions(name, scale, seed));
    auto result =
        RunPipeline(*data, BenchFalconConfig(scale, seed),
                    BenchCrowdConfig(error, seed), BenchClusterConfig());
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", name,
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("--- %s ---\n", name);
    TablePrinter table({"Operator", "Time", "Kind"});
    for (const auto& op : result->metrics.operators) {
      std::string t;
      if (op.is_crowd) {
        t = op.raw.ToString();
      } else if (op.unmasked.seconds + 1e-9 < op.raw.seconds) {
        t = op.unmasked.ToString() + " (" + op.raw.ToString() + ")";
      } else {
        t = op.raw.ToString();
      }
      table.AddRow({op.name, t, op.is_crowd ? "crowd" : "machine"});
    }
    table.Print();
    std::printf("apply method: %s | spec-rule reuse: %s | candidates: %zu\n",
                ApplyMethodName(result->metrics.apply_method),
                result->metrics.spec_rule_reused ? "yes" : "no",
                result->metrics.candidate_size);
    report.Add(std::string(name) + "/apply_method",
               std::string(ApplyMethodName(result->metrics.apply_method)));
    AddLoadMetrics(&report, name, result->metrics);
    // The apply_matcher row above is the fused strategy; quantify what it
    // saves by re-running the stage eagerly in-process (exits on any
    // prediction mismatch).
    MatcherStageAb ab = AbMatcherStage(*data, *result);
    std::printf(
        "apply_matcher strategies: eager %.1fs vs fused %.1fs virtual work "
        "(%.1fx); %.1f/%zu features, %.1f/%zu trees per pair; predictions "
        "identical\n\n",
        ab.eager_s, ab.fused_s, ab.speedup, ab.features_per_pair,
        ab.vector_width, ab.trees_per_pair, ab.num_trees);
  }
  report.Write();
  return 0;
}
