// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (Section 11) on the synthetic workloads, at a CLI-configurable
// scale (`--scale 2.0` doubles table sizes). Numbers will not match the
// paper's absolute values — the substrate is a simulated cluster and the
// data synthetic — but the SHAPES the paper argues from are expected to
// hold; EXPERIMENTS.md records paper-vs-measured per experiment.
#ifndef FALCON_BENCH_HARNESS_H_
#define FALCON_BENCH_HARNESS_H_

#include <chrono>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "workload/generator.h"
#include "workload/quality.h"

namespace falcon {
namespace bench {

/// Tiny CLI flag parser: --key value / --key=value / --flag.
class Flags {
 public:
  Flags(int argc, char** argv);
  double GetDouble(const std::string& key, double def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  bool GetBool(const std::string& key, bool def = false) const;
  std::string GetString(const std::string& key,
                        const std::string& def) const;

 private:
  std::map<std::string, std::string> kv_;
};

/// Default scaled-down dataset sizes (scale 1.0), mirroring the paper's
/// relative shapes: Products small-x-medium, Songs square, Citations the
/// largest.
WorkloadOptions DatasetOptions(const std::string& name, double scale,
                               uint64_t seed);

/// Cluster/pipeline/crowd defaults used across benches. `local_threads`
/// controls real execution threads (0 = hardware concurrency, 1 = serial);
/// pass `flags.GetInt("threads", 0)` so every bench accepts --threads N.
ClusterConfig BenchClusterConfig(int local_threads = 0);
FalconConfig BenchFalconConfig(double scale, uint64_t seed);
SimulatedCrowdConfig BenchCrowdConfig(double error_rate, uint64_t seed);

/// One full pipeline execution plus its evaluation.
struct PipelineRun {
  QualityMetrics quality;
  RunMetrics metrics;
  double blocking_recall = 1.0;
  RuleSequence sequence;
  size_t matches = 0;
  /// The learned matcher and surviving candidates, kept so benches can
  /// re-apply the matching stage (e.g. the eager-vs-fused A/B below).
  RandomForest matcher;
  std::vector<CandidatePair> candidates;
};

Result<PipelineRun> RunPipeline(const GeneratedDataset& data,
                                const FalconConfig& config,
                                const SimulatedCrowdConfig& crowd_config,
                                const ClusterConfig& cluster_config);

/// In-process eager-vs-fused A/B of the matching stage. Re-applies `run`'s
/// learned matcher to its candidates on a fresh cluster two ways — eager
/// (gen_fvs materializes every vector, then apply_matcher) and fused (lazy
/// features + short-circuit FlatForest voting) — and exits with an error if
/// the predictions differ, so every bench that prints this comparison also
/// re-asserts equivalence. Times are virtual work times (VDuration).
struct MatcherStageAb {
  double eager_s = 0.0;  ///< gen_fvs(all features) + apply_matcher
  double fused_s = 0.0;  ///< forest compile + fused apply
  double speedup = 0.0;  ///< eager_s / fused_s
  size_t pairs = 0;
  double features_per_pair = 0.0;  ///< lazily computed, of vector_width
  double trees_per_pair = 0.0;     ///< voted before early exit, of num_trees
  size_t vector_width = 0;
  size_t used_features = 0;
  size_t num_trees = 0;
};

MatcherStageAb AbMatcherStage(const GeneratedDataset& data,
                              const PipelineRun& run);

/// Fixed-width table printing.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string Pct(double v, int digits = 1);
std::string Money(double v);

/// Machine-readable bench output: collects metrics and writes them to
/// BENCH_<name>.json alongside a wall_clock_ms field (measured from
/// construction to Write), so real speedups — not just virtual times — are
/// tracked across PRs.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  void Add(const std::string& key, double value);
  void Add(const std::string& key, int64_t value);
  void Add(const std::string& key, const std::string& value);

  /// Writes BENCH_<name>.json in the working directory. Returns the path.
  std::string Write();

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  /// Preformatted (key, JSON value) pairs, kept in insertion order.
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Adds the run's per-task load rollup (RunMetrics <- JobStats) to `report`
/// under `prefix`: <prefix>/mr_tasks, /task_vtime_max_s, /task_vtime_mean_s,
/// /task_vtime_p99_s, /straggler_ratio. A straggler ratio near 1.0 means the
/// run's job phases were balanced; large values flag hot tasks the
/// skew-aware partitioner exists to split.
void AddLoadMetrics(BenchReport* report, const std::string& prefix,
                    const RunMetrics& metrics);

/// Same rollup for one job phase (e.g. the blocking apply job's reduce).
void AddLoadMetrics(BenchReport* report, const std::string& prefix,
                    const TaskLoadStats& load);

}  // namespace bench
}  // namespace falcon

#endif  // FALCON_BENCH_HARNESS_H_
