// Microbenchmarks: snapshot save/load cost (google-benchmark). The custom
// main() first walks a table1-style Products run through every operator
// boundary, checkpointing at each one, and writes BENCH_micro_snapshot.json
// with the per-boundary snapshot size, save time, and load(+rehydrate) time
// — the numbers that decide how often a cloud service can afford to
// checkpoint. Each load is verified to land back on the same boundary.
// FALCON_BENCH_SMOKE=1 shrinks the dataset so the binary doubles as a ctest
// smoke test.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "harness.h"

#include "crowd/crowd.h"
#include "mapreduce/cluster.h"
#include "session/session_manager.h"
#include "session/snapshot.h"
#include "session/workflow_session.h"

namespace falcon {
namespace {

bool SmokeMode() { return std::getenv("FALCON_BENCH_SMOKE") != nullptr; }

double MsBetween(std::chrono::steady_clock::time_point t0,
                 std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// One checkpoint: the boundary it was taken at and what it cost.
struct BoundaryCost {
  PipelineStage next = PipelineStage::kInit;
  size_t bytes = 0;
  double save_ms = 0.0;
  double load_ms = 0.0;  ///< LoadSnapshot + Rehydrate, via Resume()
};

/// A table1-style Products workload plus one full session run with a
/// checkpoint at every operator boundary, built once.
struct SnapshotFixture {
  GeneratedDataset data;
  FalconConfig config;
  SimulatedCrowdConfig crowd_config;
  ClusterConfig cluster_config;
  std::vector<BoundaryCost> boundaries;
  std::string last_snapshot;  ///< at the final (done) boundary

  SnapshotFixture() {
    const double scale = SmokeMode() ? 0.25 : 1.0;
    data = GenerateProducts(bench::DatasetOptions("products", scale, 7));
    config = bench::BenchFalconConfig(scale, 7);
    config.deterministic_rule_cost = true;
    crowd_config = bench::BenchCrowdConfig(0.03, 7);
    cluster_config = bench::BenchClusterConfig();

    Cluster cluster(cluster_config);
    SimulatedCrowd crowd(crowd_config, data.truth.MakeOracle());
    WorkflowSession session("bench", &data.a, &data.b, &crowd, &cluster,
                            config);

    auto checkpoint = [&] {
      using Clock = std::chrono::steady_clock;
      BoundaryCost c;
      c.next = session.next_stage();
      auto t0 = Clock::now();
      std::string blob = session.SaveSnapshot();
      auto t1 = Clock::now();
      c.bytes = blob.size();
      c.save_ms = MsBetween(t0, t1);

      SimulatedCrowd crowd2(crowd_config, data.truth.MakeOracle());
      auto t2 = Clock::now();
      auto resumed = WorkflowSession::Resume(blob, &data.a, &data.b, &crowd2,
                                             &cluster, config);
      auto t3 = Clock::now();
      if (!resumed.ok()) {
        std::fprintf(stderr, "FATAL: resume at boundary %s failed: %s\n",
                     PipelineStageName(c.next),
                     resumed.status().message().c_str());
        std::exit(1);
      }
      if ((*resumed)->next_stage() != c.next) {
        std::fprintf(stderr, "FATAL: resume landed on %s, expected %s\n",
                     PipelineStageName((*resumed)->next_stage()),
                     PipelineStageName(c.next));
        std::exit(1);
      }
      c.load_ms = MsBetween(t2, t3);
      boundaries.push_back(c);
      last_snapshot = std::move(blob);
    };

    if (!session.Start().ok()) {
      std::fprintf(stderr, "FATAL: session start failed\n");
      std::exit(1);
    }
    checkpoint();
    while (!session.done()) {
      if (!session.Step().ok()) {
        std::fprintf(stderr, "FATAL: session step failed\n");
        std::exit(1);
      }
      checkpoint();
    }
  }
};

SnapshotFixture* Fixture() {
  static SnapshotFixture* fx = new SnapshotFixture();
  return fx;
}

// Save at the final boundary — the largest state (forests, candidates,
// predictions, full crowd journal), so the worst-case checkpoint cost.
void BM_SaveSnapshot(benchmark::State& state) {
  SnapshotFixture* fx = Fixture();
  Cluster cluster(fx->cluster_config);
  SimulatedCrowd crowd(fx->crowd_config, fx->data.truth.MakeOracle());
  auto session = WorkflowSession::Resume(fx->last_snapshot, &fx->data.a,
                                         &fx->data.b, &crowd, &cluster,
                                         fx->config);
  if (!session.ok()) {
    state.SkipWithError("resume failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize((*session)->SaveSnapshot());
  }
}
BENCHMARK(BM_SaveSnapshot);

// Load + rehydrate from the final boundary, via the same Resume() path a
// recovering service would take.
void BM_LoadSnapshot(benchmark::State& state) {
  SnapshotFixture* fx = Fixture();
  Cluster cluster(fx->cluster_config);
  for (auto _ : state) {
    SimulatedCrowd crowd(fx->crowd_config, fx->data.truth.MakeOracle());
    auto session = WorkflowSession::Resume(fx->last_snapshot, &fx->data.a,
                                           &fx->data.b, &crowd, &cluster,
                                           fx->config);
    if (!session.ok()) {
      state.SkipWithError("resume failed");
      return;
    }
    benchmark::DoNotOptimize(session);
  }
}
BENCHMARK(BM_LoadSnapshot);

// Header + META parse only — what a session manager pays to list snapshots.
void BM_ReadSnapshotMeta(benchmark::State& state) {
  SnapshotFixture* fx = Fixture();
  for (auto _ : state) {
    auto meta = ReadSnapshotMeta(fx->last_snapshot);
    if (!meta.ok()) {
      state.SkipWithError("meta parse failed");
      return;
    }
    benchmark::DoNotOptimize(meta);
  }
}
BENCHMARK(BM_ReadSnapshotMeta);

/// Per-boundary costs written to BENCH_micro_snapshot.json.
void WriteBoundaryReport() {
  SnapshotFixture* fx = Fixture();

  bench::BenchReport report("micro_snapshot");
  report.Add("rows_a", static_cast<int64_t>(fx->data.a.num_rows()));
  report.Add("rows_b", static_cast<int64_t>(fx->data.b.num_rows()));
  report.Add("boundaries", static_cast<int64_t>(fx->boundaries.size()));

  bench::TablePrinter table({"boundary", "next stage", "bytes", "save ms",
                             "load+rehydrate ms"});
  size_t max_bytes = 0;
  double total_save_ms = 0.0, total_load_ms = 0.0;
  for (size_t i = 0; i < fx->boundaries.size(); ++i) {
    const BoundaryCost& c = fx->boundaries[i];
    std::string prefix = "b" + std::to_string(i) + "_" +
                         PipelineStageName(c.next);
    report.Add(prefix + "_bytes", static_cast<int64_t>(c.bytes));
    report.Add(prefix + "_save_ms", c.save_ms);
    report.Add(prefix + "_load_ms", c.load_ms);
    table.AddRow({std::to_string(i), PipelineStageName(c.next),
                  std::to_string(c.bytes),
                  std::to_string(c.save_ms).substr(0, 6),
                  std::to_string(c.load_ms).substr(0, 6)});
    max_bytes = std::max(max_bytes, c.bytes);
    total_save_ms += c.save_ms;
    total_load_ms += c.load_ms;
  }
  report.Add("max_bytes", static_cast<int64_t>(max_bytes));
  report.Add("total_save_ms", total_save_ms);
  report.Add("total_load_ms", total_load_ms);

  table.Print();
  std::string path = report.Write();
  std::printf("wrote %s\n", path.c_str());
  std::printf(
      "%zu boundaries; largest snapshot %zu bytes; save %.1f ms total, "
      "load+rehydrate %.1f ms total\n",
      fx->boundaries.size(), max_bytes, total_save_ms, total_load_ms);
}

}  // namespace
}  // namespace falcon

int main(int argc, char** argv) {
  falcon::WriteBoundaryReport();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
