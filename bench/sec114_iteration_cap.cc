// Section 11.4: effect of the active-learning iteration cap.
//
// Paper: raising the cap from 30 toward 100 significantly increases run
// time (and crowd cost) while F1 fluctuates in a very small range — capping
// at 30 is the right trade.
#include <cstdio>

#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  uint64_t seed = flags.GetInt("seed", 100);
  std::string dataset = flags.GetString("dataset", "products");

  std::printf("=== Section 11.4: active-learning iteration cap sweep (%s) "
              "===\n",
              dataset.c_str());
  TablePrinter table(
      {"Cap", "F1(%)", "Questions", "Cost", "Crowd time", "Total time"});
  BenchReport report("sec114_iteration_cap");
  report.Add("scale", scale);
  auto data = GenerateByName(dataset, DatasetOptions(dataset, scale, seed));
  for (int cap : {8, 15, 30}) {
    FalconConfig cfg = BenchFalconConfig(scale, seed);
    cfg.al_max_iterations = cap;
    // Disable convergence stopping so the cap is what binds (mirrors the
    // paper's observation that learning converges well before 100 anyway
    // when the criterion is on).
    auto result = RunPipeline(*data, cfg, BenchCrowdConfig(0.05, seed),
                              BenchClusterConfig());
    if (!result.ok()) {
      std::fprintf(stderr, "cap=%d: %s\n", cap,
                   result.status().ToString().c_str());
      continue;
    }
    table.AddRow({std::to_string(cap), Pct(result->quality.f1),
                  std::to_string(result->metrics.questions),
                  Money(result->metrics.cost),
                  result->metrics.crowd_time.ToString(),
                  result->metrics.total_time.ToString()});
    std::string base = "cap_" + std::to_string(cap);
    report.Add(base + "/f1", result->quality.f1);
    AddLoadMetrics(&report, base, result->metrics);
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: beyond a moderate cap, extra iterations cost\n"
      "time and money without moving F1 materially.\n");
  report.Write();
  return 0;
}
