#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "core/apply_matcher.h"
#include "core/gen_fvs.h"
#include "learn/flat_forest.h"

namespace falcon {
namespace bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "true";
    }
  }
}

double Flags::GetDouble(const std::string& key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  double v;
  return ParseDouble(it->second, &v) ? v : def;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  return static_cast<int64_t>(GetDouble(key, static_cast<double>(def)));
}

bool Flags::GetBool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

WorkloadOptions DatasetOptions(const std::string& name, double scale,
                               uint64_t seed) {
  WorkloadOptions opt;
  opt.seed = seed;
  if (name == "products") {
    // Paper: 2,554 x 22,074 — small enough to keep at (near) full scale.
    opt.size_a = static_cast<size_t>(500 * scale);
    opt.size_b = static_cast<size_t>(2500 * scale);
    opt.dirtiness = 0.50;
    opt.missing_rate = 0.05;
    opt.match_fraction = 0.45;
  } else if (name == "songs") {
    // Paper: 1M x 1M (square) — scaled down ~300x.
    opt.size_a = static_cast<size_t>(1200 * scale);
    opt.size_b = static_cast<size_t>(1200 * scale);
    opt.dirtiness = 0.30;
    opt.match_fraction = 0.60;
    opt.duplicate_rate = 0.30;  // >1 match per tuple, as in Songs
  } else if (name == "citations") {
    // Paper: 1.8M x 2.5M — the largest pair, scaled keeping the ratio.
    opt.size_a = static_cast<size_t>(1200 * scale);
    opt.size_b = static_cast<size_t>(1700 * scale);
    opt.dirtiness = 0.35;
    opt.match_fraction = 0.35;
  } else if (name == "drugs") {
    // Paper deployment: 453K x 451K.
    opt.size_a = static_cast<size_t>(1000 * scale);
    opt.size_b = static_cast<size_t>(1000 * scale);
    opt.dirtiness = 0.30;
    opt.match_fraction = 0.55;
  }
  return opt;
}

ClusterConfig BenchClusterConfig(int local_threads) {
  ClusterConfig c;
  // 10 nodes x 8 cores, as in the paper's testbed.
  c.num_nodes = 10;
  c.map_slots_per_node = 8;
  c.reduce_slots_per_node = 8;
  c.job_startup = VDuration::Seconds(2.0);
  c.task_overhead = VDuration::Seconds(0.05);
  // Mapper memory scaled with the ~300x data scale-down: the paper's 2 GB
  // becomes 8 MB so the memory-pressure experiments exercise the same
  // regimes.
  c.mapper_memory_bytes = size_t{8} * 1024 * 1024;
  c.reducer_memory_bytes = size_t{8} * 1024 * 1024;
  c.local_threads = local_threads;
  return c;
}

FalconConfig BenchFalconConfig(double scale, uint64_t seed) {
  FalconConfig cfg;
  cfg.seed = seed;
  cfg.sample_size = static_cast<size_t>(6000 * scale);
  cfg.sample_y = 50;
  cfg.al_max_iterations = 15;
  cfg.max_rules_to_eval = 15;
  cfg.max_rules_exhaustive = 10;
  cfg.pair_selection_mask_threshold = 30000;
  // Force the blocking plan at bench scale (the matcher-only plan is for
  // genuinely tiny inputs).
  cfg.matcher_only_max_bytes = size_t{8} * 1024 * 1024;
  return cfg;
}

SimulatedCrowdConfig BenchCrowdConfig(double error_rate, uint64_t seed) {
  SimulatedCrowdConfig c;
  c.error_rate = error_rate;
  c.seed = seed;
  // 1.5 minutes per 10-question HIT: the paper's own simulated-crowd
  // setting (Section 11.4).
  c.hit_latency_mean = VDuration::Minutes(1.5);
  c.latency_sigma = 0.25;
  return c;
}

Result<PipelineRun> RunPipeline(const GeneratedDataset& data,
                                const FalconConfig& config,
                                const SimulatedCrowdConfig& crowd_config,
                                const ClusterConfig& cluster_config) {
  Cluster cluster(cluster_config);
  SimulatedCrowd crowd(crowd_config, data.truth.MakeOracle());
  FalconPipeline pipeline(&data.a, &data.b, &crowd, &cluster, config);
  FALCON_ASSIGN_OR_RETURN(MatchResult res, pipeline.Run());
  PipelineRun out;
  out.quality = EvaluateMatches(res.matches, data.truth);
  out.metrics = res.metrics;
  out.blocking_recall = BlockingRecall(res.candidates, data.truth);
  out.sequence = res.sequence;
  out.matches = res.matches.size();
  out.matcher = std::move(res.matcher);
  out.candidates = std::move(res.candidates);
  return out;
}

void AddLoadMetrics(BenchReport* report, const std::string& prefix,
                    const RunMetrics& metrics) {
  report->Add(prefix + "/mr_tasks", static_cast<int64_t>(metrics.mr_tasks));
  report->Add(prefix + "/task_vtime_max_s", metrics.task_vtime_max);
  report->Add(prefix + "/task_vtime_mean_s", metrics.task_vtime_mean);
  report->Add(prefix + "/task_vtime_p99_s", metrics.task_vtime_p99);
  report->Add(prefix + "/straggler_ratio", metrics.straggler_ratio);
}

void AddLoadMetrics(BenchReport* report, const std::string& prefix,
                    const TaskLoadStats& load) {
  report->Add(prefix + "/mr_tasks", static_cast<int64_t>(load.tasks));
  report->Add(prefix + "/task_vtime_max_s", load.max_seconds);
  report->Add(prefix + "/task_vtime_mean_s", load.mean_seconds);
  report->Add(prefix + "/task_vtime_p99_s", load.p99_seconds);
  report->Add(prefix + "/straggler_ratio", load.straggler_ratio);
}

MatcherStageAb AbMatcherStage(const GeneratedDataset& data,
                              const PipelineRun& run) {
  MatcherStageAb ab;
  ab.pairs = run.candidates.size();
  if (run.candidates.empty() || run.matcher.num_trees() == 0) return ab;
  // Feature generation is deterministic, so this regenerated set has the
  // layout the pipeline trained the forest on. Left unbound: both strategies
  // then pay the same string-path feature cost and the comparison isolates
  // laziness + short-circuiting.
  FeatureSet fs = FeatureSet::Generate(data.a, data.b);
  Cluster cluster((ClusterConfig()));

  auto fvs = GenFvs(data.a, data.b, run.candidates, fs, fs.all_ids(),
                    &cluster);
  auto eager = ApplyMatcher(run.matcher, fvs.fvs, &cluster);
  ab.eager_s = fvs.time.seconds + eager.time.seconds;

  FlatForest flat = FlatForest::Compile(run.matcher);
  auto fused = ApplyMatcherFused(data.a, data.b, run.candidates, fs,
                                 fs.all_ids(), flat, &cluster);
  ab.fused_s = fused.time.seconds;

  if (fused.predictions != eager.predictions) {
    std::fprintf(stderr,
                 "FATAL: fused matcher predictions diverge from eager over "
                 "%zu pairs\n",
                 run.candidates.size());
    std::exit(1);
  }
  ab.speedup = ab.fused_s > 0.0 ? ab.eager_s / ab.fused_s : 0.0;
  const FusedMatcherWork& w = fused.work;
  if (w.pairs > 0) {
    ab.features_per_pair =
        static_cast<double>(w.features_computed) / static_cast<double>(w.pairs);
    ab.trees_per_pair =
        static_cast<double>(w.trees_voted) / static_cast<double>(w.pairs);
  }
  ab.vector_width = w.vector_width;
  ab.used_features = w.used_features;
  ab.num_trees = w.num_trees;
  return ab;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s|", std::string(width[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Pct(double v, int digits) {
  return FormatDouble(v * 100.0, digits);
}

std::string Money(double v) { return "$" + FormatDouble(v, 2); }

// --- BenchReport -------------------------------------------------------------

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

void BenchReport::Add(const std::string& key, double value) {
  entries_.emplace_back(key, JsonNumber(value));
}

void BenchReport::Add(const std::string& key, int64_t value) {
  entries_.emplace_back(key, std::to_string(value));
}

void BenchReport::Add(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

std::string BenchReport::Write() {
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
    return path;
  }
  std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"wall_clock_ms\": %s",
               JsonEscape(name_).c_str(), JsonNumber(wall_ms).c_str());
  for (const auto& [key, value] : entries_) {
    std::fprintf(f, ",\n  \"%s\": %s", JsonEscape(key).c_str(),
                 value.c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("[bench] wrote %s (wall_clock_ms=%s)\n", path.c_str(),
              JsonNumber(wall_ms).c_str());
  return path;
}

}  // namespace bench
}  // namespace falcon
