// Figure 10: performance across varying table sizes (25/50/75/100%).
//
// Paper (simulated crowd, 5% error, 1.5m HIT latency): as size grows,
// F1 stays stable, run time grows sublinearly, cost grows sublinearly.
#include <cstdio>

#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  int runs = static_cast<int>(flags.GetInt("runs", 1));

  BenchReport report("fig10_scaling");
  report.Add("scale", scale);
  report.Add("runs", static_cast<int64_t>(runs));
  for (const char* dataset : {"songs", "citations"}) {
    std::printf("=== Figure 10: size sweep on %s (%d run(s) per point) ===\n",
                dataset, runs);
    TablePrinter table({"Size", "|A|", "|B|", "F1(%)", "Total time", "Cost",
                        "Machine", "Candidates"});
    for (double frac : {0.25, 0.50, 0.75, 1.00}) {
      double f1 = 0, cost = 0;
      VDuration total, machine;
      size_t cand = 0, size_a = 0, size_b = 0;
      int ok_runs = 0;
      for (int run = 0; run < runs; ++run) {
        uint64_t seed = 500 + run;
        auto opt = DatasetOptions(dataset, scale * frac, seed);
        size_a = opt.size_a;
        size_b = opt.size_b;
        auto data = GenerateByName(dataset, opt);
        // The sample shrinks with the data (paper keeps |S| fixed at 1M for
        // million-tuple tables; at bench scale a fixed sample would exceed
        // small inputs).
        auto cfg = BenchFalconConfig(scale * frac, seed);
        auto result = RunPipeline(*data, cfg, BenchCrowdConfig(0.05, seed),
                                  BenchClusterConfig());
        if (!result.ok()) {
          std::fprintf(stderr, "%s %.0f%% run %d: %s\n", dataset, frac * 100,
                       run, result.status().ToString().c_str());
          continue;
        }
        ++ok_runs;
        f1 += result->quality.f1;
        cost += result->metrics.cost;
        total += result->metrics.total_time;
        machine += result->metrics.machine_time;
        cand += result->metrics.candidate_size;
        std::string base = std::string(dataset) + "/size_" +
                           std::to_string(static_cast<int>(frac * 100)) +
                           "/run_" + std::to_string(run);
        report.Add(base + "/total_seconds",
                   result->metrics.total_time.seconds);
        AddLoadMetrics(&report, base, result->metrics);
      }
      if (ok_runs == 0) continue;
      double n = ok_runs;
      table.AddRow({Pct(frac, 0) + "%", std::to_string(size_a),
                    std::to_string(size_b), Pct(f1 / n),
                    (total * (1.0 / n)).ToString(), Money(cost / n),
                    (machine * (1.0 / n)).ToString(),
                    std::to_string(cand / ok_runs)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Shape check vs paper: F1 stable across sizes; total time and cost\n"
      "grow sublinearly with table size.\n");
  report.Write();
  return 0;
}
