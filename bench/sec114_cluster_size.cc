// Section 11.4 (additional experiments): machine time vs cluster size.
//
// Paper: a Songs run takes 31m / 11m / 7m / 6m on 5 / 10 / 15 / 20 nodes —
// big win from 5 to 10, diminishing returns beyond.
#include <cstdio>

#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  uint64_t seed = flags.GetInt("seed", 100);
  int threads = static_cast<int>(flags.GetInt("threads", 0));
  std::string dataset = flags.GetString("dataset", "songs");
  double zipf_s = flags.GetDouble("zipf", 1.3);

  std::printf("=== Section 11.4: machine time vs cluster size (%s) ===\n",
              dataset.c_str());
  BenchReport report("sec114_cluster_size");
  report.Add("dataset", dataset);
  report.Add("scale", scale);
  report.Add("threads", static_cast<int64_t>(threads));
  report.Add("zipf_s", zipf_s);
  TablePrinter table({"Workload", "Nodes", "Machine time", "Unmasked machine",
                      "Total time", "Straggler", "F1(%)"});
  // Two curves: the original (mildly skewed) workload, and a Zipf-heavy
  // variant whose hot blocking keys make node-count scaling flatten out
  // unless the skew-aware partitioner splits them.
  for (const char* wl : {"uniform", "zipf"}) {
    WorkloadOptions opt = DatasetOptions(dataset, scale, seed);
    bool zipf = std::string(wl) == "zipf";
    if (zipf) opt.zipf_s = zipf_s;
    auto data = GenerateByName(dataset, opt);
    for (int nodes : {5, 10, 15, 20}) {
      ClusterConfig ccfg = BenchClusterConfig(threads);
      ccfg.num_nodes = nodes;
      // At 1/300 data scale every job is dominated by fixed startup cost, so
      // node count would not matter — that is the far end of the paper's
      // diminishing-returns curve, not its interesting region. Slowing the
      // virtual cores (an explicit calibration constant of the simulator)
      // restores the compute-bound regime the paper's cluster operated in,
      // so the node-count scaling becomes visible.
      ccfg.core_speed_factor = 200.0;
      // The skewed curve runs with the skew-aware shuffle on: this is the
      // configuration a cloud deployment would use, and the straggler
      // column shows what it buys.
      if (zipf) ccfg.partitioner = ShufflePartitioner::kSkewAware;
      auto result = RunPipeline(*data, BenchFalconConfig(scale, seed),
                                BenchCrowdConfig(0.05, seed), ccfg);
      if (!result.ok()) {
        std::fprintf(stderr, "%s nodes=%d: %s\n", wl, nodes,
                     result.status().ToString().c_str());
        continue;
      }
      char straggler[32];
      std::snprintf(straggler, sizeof(straggler), "%.2f",
                    result->metrics.straggler_ratio);
      table.AddRow({wl, std::to_string(nodes),
                    result->metrics.machine_time.ToString(),
                    result->metrics.machine_unmasked.ToString(),
                    result->metrics.total_time.ToString(), straggler,
                    Pct(result->quality.f1)});
      std::string base =
          std::string(wl) + "/nodes_" + std::to_string(nodes);
      report.Add(base + "/machine_seconds",
                 result->metrics.machine_time.seconds);
      report.Add(base + "/total_seconds",
                 result->metrics.total_time.seconds);
      AddLoadMetrics(&report, base, result->metrics);
    }
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: machine time falls with nodes; the 5->10 step\n"
      "gains the most, later steps show diminishing returns (per-job startup\n"
      "and task overheads stop scaling).\n");
  report.Write();
  return 0;
}
