// Section 11.2 (sel_opt_seq): the optimal rule sequence vs executing all
// rules, the top-1 rule, or the top-3 rules.
//
// Paper shape: the optimal sequence achieves the highest recall (or within
// 0.3%), the lowest run time (or within 4%), and a near-smallest candidate
// set among the alternatives.
#include <cstdio>

#include "blocking/apply.h"
#include "blocking/index_builder.h"
#include "core/al_matcher.h"
#include "core/eval_rules.h"
#include "core/gen_fvs.h"
#include "core/get_rules.h"
#include "core/sample_pairs.h"
#include "core/select_opt_seq.h"
#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  uint64_t seed = flags.GetInt("seed", 100);

  std::printf("=== Section 11.2: optimal rule sequence vs alternatives ===\n\n");
  for (const char* name : {"products", "songs", "citations"}) {
    auto data = GenerateByName(name, DatasetOptions(name, scale, seed));
    FeatureSet fs = FeatureSet::Generate(data->a, data->b);
    Cluster cluster(BenchClusterConfig());
    SimulatedCrowd crowd(BenchCrowdConfig(0.05, seed),
                         data->truth.MakeOracle());
    Rng rng(seed);
    FalconConfig cfg = BenchFalconConfig(scale, seed);

    // Run the blocking stage by hand so the retained rules are available.
    auto sample = SamplePairs(data->a, data->b, cfg.sample_size,
                              cfg.sample_y, &cluster, &rng);
    if (!sample.ok()) continue;
    auto fvs = GenFvs(data->a, data->b, sample->pairs, fs,
                      fs.blocking_ids(), &cluster);
    AlMatcherOptions al;
    al.max_iterations = cfg.al_max_iterations;
    auto blocker =
        AlMatcher(fvs.fvs, sample->pairs, &crowd, al, &cluster, &rng);
    if (!blocker.ok()) continue;
    GetRulesOptions gr;
    gr.max_rules = cfg.max_rules_to_eval;
    auto cands = GetBlockingRules(blocker->matcher, fs.blocking_ids(), fs,
                                  fvs.fvs, blocker->labeled_indices,
                                  blocker->labels, gr, &cluster);
    auto evaluated = EvalRules(cands.rules, cands.coverage, sample->pairs,
                               &crowd, EvalRulesOptions{}, &rng);
    if (!evaluated.ok() || evaluated->retained.empty()) {
      std::fprintf(stderr, "%s: no retained rules\n", name);
      continue;
    }
    SelectSeqOptions ss;
    ss.max_rules_exhaustive = cfg.max_rules_exhaustive;
    auto opt = SelectOptSeq(evaluated->retained,
                            evaluated->retained_coverage,
                            sample->pairs.size(), ss);
    if (!opt.ok()) continue;

    // Alternatives in eval_rules rank order.
    auto subsequence = [&](size_t k) {
      RuleSequence s;
      for (size_t i = 0; i < std::min(k, evaluated->retained.size()); ++i) {
        s.rules.push_back(evaluated->retained[i]);
      }
      s.selectivity = opt->sequence.selectivity;
      return s;
    };
    struct Variant {
      const char* label;
      RuleSequence seq;
    };
    std::vector<Variant> variants = {
        {"optimal seq", opt->sequence},
        {"all rules", subsequence(evaluated->retained.size())},
        {"top-1 rule", subsequence(1)},
        {"top-3 rules", subsequence(3)},
    };

    std::printf("--- %s (%zu retained rules; sel_opt_seq took %s) ---\n",
                name, evaluated->retained.size(), opt->time.ToString().c_str());
    TablePrinter table(
        {"Variant", "Rules", "Recall(%)", "Virtual time", "Candidates"});
    IndexCatalog catalog;
    IndexBuilder builder(&data->a, &cluster);
    for (auto& v : variants) {
      CnfRule q = ToCnf(v.seq);
      builder.Ensure(IndexBuilder::NeedsOfCnf(q, fs), &catalog);
      ApplyMethod m = SelectApplyMethod(data->a, data->b, v.seq, fs, catalog,
                                        cluster);
      auto res = ApplyBlockingRules(data->a, data->b, v.seq, fs, catalog,
                                    &cluster, m, ApplyOptions{});
      if (!res.ok()) {
        table.AddRow({v.label, std::to_string(v.seq.rules.size()),
                      "-", res.status().ToString().substr(0, 30), "-"});
        continue;
      }
      table.AddRow({v.label, std::to_string(v.seq.rules.size()),
                    Pct(BlockingRecall(res->pairs, data->truth)),
                    res->time.ToString(), std::to_string(res->pairs.size())});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Shape check vs paper: the optimal sequence's recall is highest or\n"
      "within a fraction of a percent; its run time and candidate set are\n"
      "at or near the best of the alternatives.\n");
  return 0;
}
