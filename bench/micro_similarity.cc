// Microbenchmarks: similarity functions and tokenizers (google-benchmark).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "text/similarity.h"
#include "text/tokenize.h"
#include "workload/generator.h"

namespace falcon {
namespace {

std::string RandomPhrase(Rng* rng, const Vocabulary& vocab, int words) {
  std::string s;
  for (int i = 0; i < words; ++i) {
    if (i) s += ' ';
    s += vocab.SampleZipf(rng);
  }
  return s;
}

struct Corpus {
  std::vector<std::string> phrases;
  std::vector<std::vector<std::string>> word_sets;
  std::vector<std::vector<std::string>> gram_sets;

  Corpus() {
    Rng rng(7);
    Vocabulary vocab(2000, 3);
    for (int i = 0; i < 256; ++i) {
      phrases.push_back(RandomPhrase(&rng, vocab, 3 + i % 8));
      word_sets.push_back(ToTokenSet(WordTokens(phrases.back())));
      gram_sets.push_back(ToTokenSet(QGramTokens(phrases.back(), 3)));
    }
  }
};

const Corpus& GetCorpus() {
  static Corpus* corpus = new Corpus();
  return *corpus;
}

void BM_WordTokenize(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(WordTokens(c.phrases[i++ % c.phrases.size()]));
  }
}
BENCHMARK(BM_WordTokenize);

void BM_QGramTokenize(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        QGramTokens(c.phrases[i++ % c.phrases.size()], 3));
  }
}
BENCHMARK(BM_QGramTokenize);

template <double (*F)(const std::vector<std::string>&,
                      const std::vector<std::string>&)>
void BM_SetSimWord(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = c.word_sets[i % c.word_sets.size()];
    const auto& y = c.word_sets[(i * 7 + 3) % c.word_sets.size()];
    benchmark::DoNotOptimize(F(x, y));
    ++i;
  }
}
BENCHMARK(BM_SetSimWord<&JaccardSim>)->Name("BM_Jaccard_word");
BENCHMARK(BM_SetSimWord<&DiceSim>)->Name("BM_Dice_word");
BENCHMARK(BM_SetSimWord<&OverlapSim>)->Name("BM_Overlap_word");
BENCHMARK(BM_SetSimWord<&CosineSim>)->Name("BM_Cosine_word");

void BM_Jaccard3gram(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = c.gram_sets[i % c.gram_sets.size()];
    const auto& y = c.gram_sets[(i * 7 + 3) % c.gram_sets.size()];
    benchmark::DoNotOptimize(JaccardSim(x, y));
    ++i;
  }
}
BENCHMARK(BM_Jaccard3gram);

void BM_Levenshtein(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LevenshteinSim(c.phrases[i % c.phrases.size()],
                       c.phrases[(i * 7 + 3) % c.phrases.size()]));
    ++i;
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        JaroWinklerSim(c.phrases[i % c.phrases.size()],
                       c.phrases[(i * 7 + 3) % c.phrases.size()]));
    ++i;
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_MongeElkan(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = c.word_sets[i % c.word_sets.size()];
    const auto& y = c.word_sets[(i * 7 + 3) % c.word_sets.size()];
    benchmark::DoNotOptimize(MongeElkanSim(x, y));
    ++i;
  }
}
BENCHMARK(BM_MongeElkan);

void BM_SmithWatermanGotoh(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SmithWatermanGotohSim(c.phrases[i % c.phrases.size()],
                              c.phrases[(i * 7 + 3) % c.phrases.size()]));
    ++i;
  }
}
BENCHMARK(BM_SmithWatermanGotoh);

void BM_TfIdf(benchmark::State& state) {
  const auto& c = GetCorpus();
  static IdfDict* idf = [] {
    auto* d = new IdfDict();
    for (const auto& s : GetCorpus().word_sets) d->AddDocument(s);
    d->Finalize();
    return d;
  }();
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = c.word_sets[i % c.word_sets.size()];
    const auto& y = c.word_sets[(i * 7 + 3) % c.word_sets.size()];
    benchmark::DoNotOptimize(TfIdfSim(x, y, *idf));
    ++i;
  }
}
BENCHMARK(BM_TfIdf);

}  // namespace
}  // namespace falcon

BENCHMARK_MAIN();
