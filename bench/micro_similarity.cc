// Microbenchmarks: similarity functions and tokenizers (google-benchmark).
// The custom main() first writes BENCH_micro_similarity.json with a direct
// string-path vs TokenId-path comparison, then runs google-benchmark.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <benchmark/benchmark.h>

#include "harness.h"

#include "common/rng.h"
#include "text/intersect.h"
#include "text/similarity.h"
#include "text/token_dictionary.h"
#include "text/tokenize.h"
#include "workload/generator.h"

namespace falcon {
namespace {

std::string RandomPhrase(Rng* rng, const Vocabulary& vocab, int words) {
  std::string s;
  for (int i = 0; i < words; ++i) {
    if (i) s += ' ';
    s += vocab.SampleZipf(rng);
  }
  return s;
}

struct Corpus {
  std::vector<std::string> phrases;
  std::vector<std::vector<std::string>> word_sets;
  std::vector<std::vector<std::string>> gram_sets;
  /// The same sets, interned: sorted-unique TokenId arrays over one dict.
  TokenDictionary dict;
  std::vector<std::vector<TokenId>> word_id_sets;
  std::vector<std::vector<TokenId>> gram_id_sets;

  Corpus() {
    Rng rng(7);
    Vocabulary vocab(2000, 3);
    for (int i = 0; i < 256; ++i) {
      phrases.push_back(RandomPhrase(&rng, vocab, 3 + i % 8));
      word_sets.push_back(ToTokenSet(WordTokens(phrases.back())));
      gram_sets.push_back(ToTokenSet(QGramTokens(phrases.back(), 3)));
      word_id_sets.push_back(InternSet(word_sets.back()));
      gram_id_sets.push_back(InternSet(gram_sets.back()));
    }
  }

  std::vector<TokenId> InternSet(const std::vector<std::string>& tokens) {
    std::vector<TokenId> ids;
    ids.reserve(tokens.size());
    for (const auto& t : tokens) ids.push_back(dict.Intern(t));
    std::sort(ids.begin(), ids.end());
    return ids;
  }
};

const Corpus& GetCorpus() {
  static Corpus* corpus = new Corpus();
  return *corpus;
}

void BM_WordTokenize(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(WordTokens(c.phrases[i++ % c.phrases.size()]));
  }
}
BENCHMARK(BM_WordTokenize);

void BM_QGramTokenize(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        QGramTokens(c.phrases[i++ % c.phrases.size()], 3));
  }
}
BENCHMARK(BM_QGramTokenize);

template <double (*F)(const std::vector<std::string>&,
                      const std::vector<std::string>&)>
void BM_SetSimWord(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = c.word_sets[i % c.word_sets.size()];
    const auto& y = c.word_sets[(i * 7 + 3) % c.word_sets.size()];
    benchmark::DoNotOptimize(F(x, y));
    ++i;
  }
}
BENCHMARK(BM_SetSimWord<&JaccardSim>)->Name("BM_Jaccard_word");
BENCHMARK(BM_SetSimWord<&DiceSim>)->Name("BM_Dice_word");
BENCHMARK(BM_SetSimWord<&OverlapSim>)->Name("BM_Overlap_word");
BENCHMARK(BM_SetSimWord<&CosineSim>)->Name("BM_Cosine_word");

template <double (*F)(std::span<const TokenId>, std::span<const TokenId>)>
void BM_SetSimWordIds(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = c.word_id_sets[i % c.word_id_sets.size()];
    const auto& y = c.word_id_sets[(i * 7 + 3) % c.word_id_sets.size()];
    benchmark::DoNotOptimize(F(x, y));
    ++i;
  }
}
BENCHMARK(BM_SetSimWordIds<&JaccardSim>)->Name("BM_Jaccard_word_ids");
BENCHMARK(BM_SetSimWordIds<&DiceSim>)->Name("BM_Dice_word_ids");
BENCHMARK(BM_SetSimWordIds<&OverlapSim>)->Name("BM_Overlap_word_ids");
BENCHMARK(BM_SetSimWordIds<&CosineSim>)->Name("BM_Cosine_word_ids");

void BM_Jaccard3gram(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = c.gram_sets[i % c.gram_sets.size()];
    const auto& y = c.gram_sets[(i * 7 + 3) % c.gram_sets.size()];
    benchmark::DoNotOptimize(JaccardSim(x, y));
    ++i;
  }
}
BENCHMARK(BM_Jaccard3gram);

void BM_Jaccard3gramIds(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = c.gram_id_sets[i % c.gram_id_sets.size()];
    const auto& y = c.gram_id_sets[(i * 7 + 3) % c.gram_id_sets.size()];
    benchmark::DoNotOptimize(
        JaccardSim(std::span<const TokenId>(x), std::span<const TokenId>(y)));
    ++i;
  }
}
BENCHMARK(BM_Jaccard3gramIds)->Name("BM_Jaccard3gram_ids");

void BM_Levenshtein(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LevenshteinSim(c.phrases[i % c.phrases.size()],
                       c.phrases[(i * 7 + 3) % c.phrases.size()]));
    ++i;
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        JaroWinklerSim(c.phrases[i % c.phrases.size()],
                       c.phrases[(i * 7 + 3) % c.phrases.size()]));
    ++i;
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_MongeElkan(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = c.word_sets[i % c.word_sets.size()];
    const auto& y = c.word_sets[(i * 7 + 3) % c.word_sets.size()];
    benchmark::DoNotOptimize(MongeElkanSim(x, y));
    ++i;
  }
}
BENCHMARK(BM_MongeElkan);

void BM_SmithWatermanGotoh(benchmark::State& state) {
  const auto& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SmithWatermanGotohSim(c.phrases[i % c.phrases.size()],
                              c.phrases[(i * 7 + 3) % c.phrases.size()]));
    ++i;
  }
}
BENCHMARK(BM_SmithWatermanGotoh);

void BM_TfIdf(benchmark::State& state) {
  const auto& c = GetCorpus();
  static IdfDict* idf = [] {
    auto* d = new IdfDict();
    for (const auto& s : GetCorpus().word_sets) d->AddDocument(s);
    d->Finalize();
    return d;
  }();
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = c.word_sets[i % c.word_sets.size()];
    const auto& y = c.word_sets[(i * 7 + 3) % c.word_sets.size()];
    benchmark::DoNotOptimize(TfIdfSim(x, y, *idf));
    ++i;
  }
}
BENCHMARK(BM_TfIdf);

/// Measures ns/op of one string-path and one id-path set-similarity sweep
/// over the same pair sequence and records both plus the speedup.
template <typename StringFn, typename IdFn>
void CompareSetSim(bench::BenchReport* report, const std::string& key,
                   const std::vector<std::vector<std::string>>& str_sets,
                   const std::vector<std::vector<TokenId>>& id_sets,
                   StringFn sf, IdFn idf, size_t iters) {
  using Clock = std::chrono::steady_clock;
  double sink = 0.0;
  auto t0 = Clock::now();
  for (size_t i = 0; i < iters; ++i) {
    sink += sf(str_sets[i % str_sets.size()],
               str_sets[(i * 7 + 3) % str_sets.size()]);
  }
  auto t1 = Clock::now();
  for (size_t i = 0; i < iters; ++i) {
    sink += idf(id_sets[i % id_sets.size()],
                id_sets[(i * 7 + 3) % id_sets.size()]);
  }
  auto t2 = Clock::now();
  benchmark::DoNotOptimize(sink);
  double string_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(iters);
  double id_ns = std::chrono::duration<double, std::nano>(t2 - t1).count() /
                 static_cast<double>(iters);
  report->Add(key + "/string_ns_per_op", string_ns);
  report->Add(key + "/id_ns_per_op", id_ns);
  report->Add(key + "/speedup", id_ns > 0.0 ? string_ns / id_ns : 0.0);
}

/// Sorted unique ids, deterministic per (seed, size), from a universe sized
/// for partial overlap between independently drawn sets.
std::vector<TokenId> RandomIdSet(uint64_t seed, size_t size,
                                 uint32_t universe) {
  Rng rng(seed);
  std::vector<TokenId> v;
  while (v.size() < size) {
    const size_t need = size - v.size();
    for (size_t i = 0; i < need; ++i) {
      v.push_back(static_cast<TokenId>(rng.NextBelow(universe)));
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return v;
}

/// Adaptive-vs-scalar-merge A/B over one synthetic shape regime. Both sweeps
/// run the SAME pair sequence through SortedIntersectionSize — first with
/// SetIntersectForceScalar(true) (the pre-adaptive baseline), then adaptive —
/// and the summed counts must match exactly or the process exits: a wrong
/// kernel must fail the bench, not ship a speedup. Records ns/op for both,
/// the speedup, and which strategy counters the adaptive sweep moved.
void CompareIntersectLane(bench::BenchReport* report, const std::string& key,
                          size_t na, size_t nb, size_t iters) {
  using Clock = std::chrono::steady_clock;
  constexpr size_t kPairs = 64;
  const uint32_t universe = static_cast<uint32_t>((na + nb) * 2);
  std::vector<std::vector<TokenId>> xs, ys;
  for (size_t p = 0; p < kPairs; ++p) {
    xs.push_back(RandomIdSet(1000 + p, na, universe));
    ys.push_back(RandomIdSet(2000 + p, nb, universe));
  }

  size_t sum_scalar = 0;
  SetIntersectForceScalar(true);
  auto t0 = Clock::now();
  for (size_t i = 0; i < iters; ++i) {
    sum_scalar += SortedIntersectionSize(
        std::span<const TokenId>(xs[i % kPairs]),
        std::span<const TokenId>(ys[(i * 7 + 3) % kPairs]));
  }
  auto t1 = Clock::now();
  SetIntersectForceScalar(false);

  size_t sum_adaptive = 0;
  const IntersectCounts before = IntersectCountsSnapshot();
  auto t2 = Clock::now();
  for (size_t i = 0; i < iters; ++i) {
    sum_adaptive += SortedIntersectionSize(
        std::span<const TokenId>(xs[i % kPairs]),
        std::span<const TokenId>(ys[(i * 7 + 3) % kPairs]));
  }
  auto t3 = Clock::now();
  const IntersectCounts delta = IntersectCountsSnapshot() - before;

  if (sum_scalar != sum_adaptive) {
    fprintf(stderr,
            "FATAL: %s adaptive intersection diverged from scalar merge: "
            "%zu vs %zu\n",
            key.c_str(), sum_adaptive, sum_scalar);
    exit(1);
  }
  const double scalar_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(iters);
  const double adaptive_ns =
      std::chrono::duration<double, std::nano>(t3 - t2).count() /
      static_cast<double>(iters);
  report->Add(key + "/scalar_ns_per_op", scalar_ns);
  report->Add(key + "/adaptive_ns_per_op", adaptive_ns);
  report->Add(key + "/speedup", adaptive_ns > 0.0 ? scalar_ns / adaptive_ns
                                                  : 0.0);
  report->Add(key + "/intersect_small", static_cast<int64_t>(delta.small));
  report->Add(key + "/intersect_gallop", static_cast<int64_t>(delta.gallop));
  report->Add(key + "/intersect_simd", static_cast<int64_t>(delta.simd));
  report->Add(key + "/intersect_scalar", static_cast<int64_t>(delta.scalar));
  printf("%-20s scalar %7.2f ns  adaptive %7.2f ns  speedup %5.2fx\n",
         key.c_str(), scalar_ns, adaptive_ns,
         adaptive_ns > 0.0 ? scalar_ns / adaptive_ns : 0.0);
}

/// The shape regimes of the adaptive kernel, one lane each: tiny (branchless
/// merge), balanced (SIMD block compare), 16:1 lopsided (also SIMD — it
/// streams the long side 8 ids per compare, far past the merge), and 64:1
/// needle-in-haystack (galloping — the posting-list probe regime).
void WriteIntersectLanes(bench::BenchReport* report, size_t iters) {
  report->Add("simd_kernel", std::string(SimdIntersectKernelName()));
  CompareIntersectLane(report, "intersect_tiny", 4, 4, iters);
  CompareIntersectLane(report, "intersect_balanced", 64, 64, iters);
  CompareIntersectLane(report, "intersect_lopsided", 64, 1024,
                       std::max<size_t>(iters / 8, 1));
  CompareIntersectLane(report, "intersect_needle", 16, 1024,
                       std::max<size_t>(iters / 8, 1));
}

/// String-vs-TokenId comparison written to BENCH_micro_similarity.json.
void WriteComparisonReport() {
  const Corpus& c = GetCorpus();
  const bool smoke = std::getenv("FALCON_BENCH_SMOKE") != nullptr;
  const size_t iters = smoke ? 20'000 : 2'000'000;
  bench::BenchReport report("micro_similarity");
  report.Add("iters", static_cast<int64_t>(iters));
  auto j_s = [](const std::vector<std::string>& x,
                const std::vector<std::string>& y) { return JaccardSim(x, y); };
  auto d_s = [](const std::vector<std::string>& x,
                const std::vector<std::string>& y) { return DiceSim(x, y); };
  auto o_s = [](const std::vector<std::string>& x,
                const std::vector<std::string>& y) { return OverlapSim(x, y); };
  auto c_s = [](const std::vector<std::string>& x,
                const std::vector<std::string>& y) { return CosineSim(x, y); };
  auto j_i = [](std::span<const TokenId> x, std::span<const TokenId> y) {
    return JaccardSim(x, y);
  };
  auto d_i = [](std::span<const TokenId> x, std::span<const TokenId> y) {
    return DiceSim(x, y);
  };
  auto o_i = [](std::span<const TokenId> x, std::span<const TokenId> y) {
    return OverlapSim(x, y);
  };
  auto c_i = [](std::span<const TokenId> x, std::span<const TokenId> y) {
    return CosineSim(x, y);
  };
  CompareSetSim(&report, "jaccard_word", c.word_sets, c.word_id_sets, j_s,
                j_i, iters);
  CompareSetSim(&report, "dice_word", c.word_sets, c.word_id_sets, d_s, d_i,
                iters);
  CompareSetSim(&report, "overlap_word", c.word_sets, c.word_id_sets, o_s,
                o_i, iters);
  CompareSetSim(&report, "cosine_word", c.word_sets, c.word_id_sets, c_s,
                c_i, iters);
  CompareSetSim(&report, "jaccard_3gram", c.gram_sets, c.gram_id_sets, j_s,
                j_i, iters);
  WriteIntersectLanes(&report, iters);
  std::string path = report.Write();
  printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace falcon

int main(int argc, char** argv) {
  falcon::WriteComparisonReport();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
