// Table 1: data sets for the experiments.
//
// Paper: Products 2,554 x 22,074 (1,154 matches); Songs 1M x 1M (1.29M);
// Citations 1.8M x 2.5M (559K). Here: scaled synthetic analogues (the scale
// is configurable with --scale).
#include <cstdio>

#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  uint64_t seed = flags.GetInt("seed", 1);

  std::printf("=== Table 1: data sets (scale %.2f; synthetic analogues) ===\n",
              scale);
  TablePrinter table({"Dataset", "Table A", "Table B", "# Correct Matches",
                      "Paper A", "Paper B", "Paper Matches"});
  struct PaperRow {
    const char* name;
    const char* a;
    const char* b;
    const char* m;
  };
  PaperRow paper[] = {
      {"products", "2,554", "22,074", "1,154"},
      {"songs", "1,000,000", "1,000,000", "1,292,023"},
      {"citations", "1,823,978", "2,512,927", "558,787"},
  };
  for (const auto& row : paper) {
    auto opt = DatasetOptions(row.name, scale, seed);
    auto data = GenerateByName(row.name, opt);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    table.AddRow({row.name, std::to_string(data->a.num_rows()),
                  std::to_string(data->b.num_rows()),
                  std::to_string(data->truth.size()), row.a, row.b, row.m});
  }
  table.Print();
  std::printf(
      "\nShape check: Songs is square with >1 match/tuple; Citations is the\n"
      "largest pair; Products is small-by-medium. Sizes scale with --scale.\n");
  return 0;
}
