// Multi-tenant service scheduler bench: throughput, step latency, fairness.
//
// N tenants share one EmService; tenant-00 is a "heavy" tenant submitting
// several sessions while every other tenant submits one, so a scheduler
// that rotates over *sessions* (the plain SessionManager::StepAll baseline)
// hands the heavy tenant a multiple of everyone else's share. The service's
// deficit-style fair queuing must keep per-tenant shares level instead:
// measured at the last moment every tenant still has a live session (while
// tenants genuinely contend), the max/min per-tenant machine-vtime ratio
// is the headline fairness number.
// The baseline lane re-runs the identical submission mix through bare
// WorkflowSessions stepped round-robin — all resident at once (memory
// unbounded by any admission cap) — and reports the same ratio, which grows
// with the heavy tenant's session count.
//
// Also reported: sessions/hour, scheduler-step wall latency p50/p99 across
// worker threads, and eviction/residency counters proving the admission cap
// held under queue pressure.
//
// Acceptance shape (enforced outside smoke mode, at --tenants >= 32): the
// service's fairness ratio is <= 1.5 while the baseline's is >= 2x larger,
// and peak residency never exceeds the admission cap.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "session/service.h"

using namespace falcon;
using namespace falcon::bench;

namespace {

FalconConfig TenantFalconConfig(uint64_t seed) {
  FalconConfig cfg;
  // Enough active-learning rounds that every tenant is still live for many
  // scheduler steps: fair-share convergence is bounded by one step's charge,
  // so the ratio is only meaningful once per-tenant totals span dozens of
  // steps.
  cfg.al_max_iterations = 6;
  cfg.deterministic_rule_cost = true;
  cfg.estimate_accuracy = false;
  cfg.seed = seed;
  return cfg;
}

/// One submission's standing inputs (tables + crowd outlive the sessions).
struct Job {
  std::string tenant;
  std::string id;
  GeneratedDataset data;
  std::unique_ptr<SimulatedCrowd> crowd;
  FalconConfig config;
};

std::deque<Job> MakeJobs(int tenants, int heavy_sessions, int light_sessions,
                         size_t rows_a) {
  std::deque<Job> jobs;
  uint64_t seed = 100;
  for (int t = 0; t < tenants; ++t) {
    char name[32];
    std::snprintf(name, sizeof(name), "tenant-%02d", t);
    const int sessions = t == 0 ? heavy_sessions : light_sessions;
    for (int s = 0; s < sessions; ++s, ++seed) {
      Job& job = jobs.emplace_back();
      job.tenant = name;
      job.id = std::string(name) + "/job-" + std::to_string(s);
      WorkloadOptions opt;
      opt.size_a = rows_a;
      opt.size_b = 2 * rows_a;
      opt.seed = seed;
      job.data = GenerateProducts(opt);
      SimulatedCrowdConfig ccfg;
      ccfg.error_rate = 0.03;
      ccfg.seed = seed;
      GroundTruth* truth = &job.data.truth;
      job.crowd = std::make_unique<SimulatedCrowd>(
          ccfg, [truth](RowId a, RowId b) { return truth->IsMatch(a, b); });
      job.config = TenantFalconConfig(seed);
    }
  }
  return jobs;
}

/// Per-tenant live-session counts, for the all-tenants-live fairness sample.
std::vector<std::pair<std::string, uint64_t>> TenantCounts(
    const std::deque<Job>& jobs) {
  std::vector<std::pair<std::string, uint64_t>> counts;
  for (const Job& job : jobs) {
    if (counts.empty() || counts.back().first != job.tenant) {
      counts.emplace_back(job.tenant, 0);
    }
    ++counts.back().second;
  }
  return counts;
}

struct FairnessSample {
  double machine_ratio = 0.0;  ///< max/min tenant machine vtime
  double vruntime_ratio = 0.0;
  double machine_min_s = 0.0;  ///< least-served tenant at the sample point
  double machine_max_s = 0.0;  ///< most-served tenant at the sample point
  bool valid = false;
};

struct ServiceOutcome {
  double wall_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  FairnessSample fairness;
  ServiceStats stats;
};

ServiceOutcome RunService(const std::deque<Job>& jobs, int workers,
                          size_t max_resident, size_t min_steps_evict,
                          int threads) {
  ClusterConfig ccfg = BenchClusterConfig(threads);
  // The paper-testbed 2 s per-job startup would quantize every step's
  // machine charge to whole-second multiples — one blocking step's charge
  // would rival a tenant's entire share at the sampling instant. Fairness
  // is a ratio of shares, not a cluster-fidelity number, so this lane runs
  // a snappier cluster for finer-grained charges.
  ccfg.job_startup = VDuration::Seconds(0.5);
  ccfg.task_overhead = VDuration::Seconds(0.01);
  Cluster cluster(ccfg);
  ServiceConfig scfg;
  scfg.max_resident_sessions = max_resident;
  // Aggressive eviction makes the resident set rotate over every queued
  // submission, so fair sharing acts globally across all tenants rather
  // than only inside one admission wave.
  scfg.min_steps_before_evict = min_steps_evict;
  // The headline gate is on per-tenant MACHINE-vtime share: the cluster is
  // the contended resource this bench schedules, while crowd spend is
  // already hard-capped by the per-tenant budget ledgers. With the default
  // weight the crowd-cost term dominates every step's charge, so per-seed
  // crowd-cost noise would surface as inverse machine-time spread even when
  // the scheduler equalizes its combined currency exactly. Pure machine-
  // time charging makes the scheduler optimize the quantity the gate reads.
  scfg.crowd_cost_vtime_weight = 0.0;
  EmService service(&cluster, scfg);
  for (const Job& job : jobs) {
    Status st = service.Submit(job.tenant, job.id, &job.data.a, &job.data.b,
                               job.crowd.get(), job.config);
    if (!st.ok()) {
      std::fprintf(stderr, "submit %s: %s\n", job.id.c_str(),
                   st.ToString().c_str());
      std::exit(1);
    }
  }
  auto counts = TenantCounts(jobs);

  std::mutex mu;
  std::vector<double> step_ms;
  FairnessSample fairness;
  auto worker = [&] {
    for (;;) {
      Result<StepEvent> event = service.StepOnce();
      if (!event.ok()) return;
      std::lock_guard<std::mutex> lock(mu);
      step_ms.push_back(event->wall_ms);
      if (std::getenv("FALCON_BENCH_TRACE") != nullptr) {
        std::fprintf(stderr,
                     "step %zu %s %s stage=%d charge=%.2f wall=%.0fms%s\n",
                     step_ms.size(), event->tenant.c_str(),
                     event->session_id.c_str(),
                     static_cast<int>(event->stage), event->charged_vtime_s,
                     event->wall_ms, event->session_done ? " DONE" : "");
      }
      // Fairness is sampled while EVERY tenant still has a live session:
      // once a tenant retires, the work-conserving scheduler hands the
      // freed capacity to whoever still has demand, so later cumulative
      // ratios measure work conservation, not unfairness.
      double min_mt = 1e300, max_mt = 0.0, min_vr = 1e300, max_vr = 0.0;
      std::string min_tenant, max_tenant;
      bool contended = true;
      for (const auto& [tenant, submitted] : counts) {
        auto ts = service.tenant_stats(tenant);
        if (!ts.ok() || ts->completed + ts->failed >= submitted) {
          contended = false;
          break;
        }
        if (ts->machine_vtime_s < min_mt) {
          min_mt = ts->machine_vtime_s;
          min_tenant = tenant;
        }
        if (ts->machine_vtime_s > max_mt) {
          max_mt = ts->machine_vtime_s;
          max_tenant = tenant;
        }
        min_vr = std::min(min_vr, ts->vruntime_s);
        max_vr = std::max(max_vr, ts->vruntime_s);
      }
      if (contended && min_mt > 0.0 && min_vr > 0.0) {
        fairness.machine_ratio = max_mt / min_mt;
        fairness.vruntime_ratio = max_vr / min_vr;
        fairness.machine_min_s = min_mt;
        fairness.machine_max_s = max_mt;
        fairness.valid = true;
        if (std::getenv("FALCON_BENCH_TRACE") != nullptr) {
          std::fprintf(stderr,
                       "trace step=%zu min=%s %.2fs max=%s %.2fs ratio=%.2f\n",
                       step_ms.size(), min_tenant.c_str(), min_mt,
                       max_tenant.c_str(), max_mt, max_mt / min_mt);
        }
      }
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int i = 0; i < workers; ++i) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  ServiceOutcome out;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.fairness = fairness;
  out.stats = service.stats();
  std::sort(step_ms.begin(), step_ms.end());
  if (!step_ms.empty()) {
    out.p50_ms = step_ms[step_ms.size() / 2];
    out.p99_ms = step_ms[static_cast<size_t>(
        static_cast<double>(step_ms.size() - 1) * 0.99)];
  }
  for (const auto& id : service.failed_sessions()) {
    std::fprintf(stderr, "session failed: %s: %s\n", id.c_str(),
                 service.FinalStatus(id)->ToString().c_str());
  }
  return out;
}

/// The pre-service baseline: every session resident at once (no admission
/// cap bounds memory) and stepped round-robin over *sessions*, the way
/// SessionManager::StepAll interleaves — a heavy tenant's extra sessions
/// buy it a proportionally larger share of the cluster.
struct BaselineOutcome {
  double wall_s = 0.0;
  FairnessSample fairness;
  size_t resident = 0;
};

BaselineOutcome RunBaseline(const std::deque<Job>& jobs, int threads) {
  ClusterConfig ccfg = BenchClusterConfig(threads);
  // Same cluster timing as the service lane, so the two fairness ratios
  // compare like for like.
  ccfg.job_startup = VDuration::Seconds(0.5);
  ccfg.task_overhead = VDuration::Seconds(0.01);
  Cluster cluster(ccfg);
  struct Run {
    std::unique_ptr<WorkflowSession> session;
    const Job* job;
    double watermark_s = 0.0;
    bool failed = false;
  };
  std::deque<Run> runs;
  for (const Job& job : jobs) {
    Run& r = runs.emplace_back();
    // Fresh crowd state per lane: reuse the platform but restart accounting
    // so the baseline's answer stream matches a fresh submission's.
    r.job = &job;
    r.session = std::make_unique<WorkflowSession>(
        job.id, &job.data.a, &job.data.b, job.crowd.get(), &cluster,
        job.config);
  }
  auto counts = TenantCounts(jobs);
  std::vector<double> tenant_vtime(counts.size(), 0.0);
  std::vector<uint64_t> tenant_done(counts.size(), 0);
  auto tenant_index = [&](const std::string& name) {
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i].first == name) return i;
    }
    return counts.size();
  };

  BaselineOutcome out;
  out.resident = runs.size();
  FairnessSample fairness;
  const auto t0 = std::chrono::steady_clock::now();
  bool active = true;
  while (active) {
    active = false;
    for (Run& r : runs) {
      if (r.failed || r.session->done()) continue;
      active = true;
      Status st = r.session->Step();
      const size_t ti = tenant_index(r.job->tenant);
      const double machine =
          r.session->pipeline().state().out.metrics.machine_time.seconds;
      tenant_vtime[ti] += machine - r.watermark_s;
      r.watermark_s = machine;
      if (!st.ok()) {
        std::fprintf(stderr, "baseline %s: %s\n", r.job->id.c_str(),
                     st.ToString().c_str());
        r.failed = true;
      }
      if (r.session->done() || r.failed) ++tenant_done[ti];
      // The baseline has no admission queue, so its window is the closest
      // analogue: every tenant still has a live session.
      bool all_live = true;
      double min_mt = 1e300, max_mt = 0.0;
      for (size_t i = 0; i < counts.size(); ++i) {
        if (tenant_done[i] >= counts[i].second) {
          all_live = false;
          break;
        }
        min_mt = std::min(min_mt, tenant_vtime[i]);
        max_mt = std::max(max_mt, tenant_vtime[i]);
      }
      if (all_live && min_mt > 0.0) {
        fairness.machine_ratio = max_mt / min_mt;
        fairness.valid = true;
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.fairness = fairness;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke = std::getenv("FALCON_BENCH_SMOKE") != nullptr;
  const int tenants =
      static_cast<int>(flags.GetInt("tenants", smoke ? 6 : 32));
  // Fair-share convergence is bounded by one step's charge — and the
  // session layer's checkpoint boundaries are coarse (the al_matcher step
  // carries most of a session's machine time in one quantum) — so every
  // tenant needs enough queued work that its total spans many quanta while
  // all tenants are still live: three sessions per light tenant, twelve for
  // the heavy one (keeping the 4x session-count skew the baseline exposes).
  const int heavy =
      static_cast<int>(flags.GetInt("heavy-sessions", smoke ? 2 : 12));
  const int light =
      static_cast<int>(flags.GetInt("light-sessions", smoke ? 1 : 3));
  const int workers = static_cast<int>(flags.GetInt("workers", smoke ? 2 : 4));
  const size_t max_resident =
      static_cast<size_t>(flags.GetInt("max-resident", smoke ? 3 : 8));
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const size_t rows_a =
      static_cast<size_t>(flags.GetInt("rows-a", 30));
  const size_t min_steps_evict =
      static_cast<size_t>(flags.GetInt("min-steps-evict", 1));

  std::printf(
      "=== Multi-tenant service scheduler: %d tenants (tenant-00 x%d), "
      "%d workers, admission cap %zu ===\n",
      tenants, heavy, workers, max_resident);
  BenchReport report("service");
  report.Add("tenants", static_cast<int64_t>(tenants));
  report.Add("heavy_sessions", static_cast<int64_t>(heavy));
  report.Add("light_sessions", static_cast<int64_t>(light));
  report.Add("workers", static_cast<int64_t>(workers));
  report.Add("max_resident", static_cast<int64_t>(max_resident));
  report.Add("rows_a", static_cast<int64_t>(rows_a));
  report.Add("min_steps_before_evict",
             static_cast<int64_t>(min_steps_evict));
  report.Add("smoke", static_cast<int64_t>(smoke ? 1 : 0));

  std::deque<Job> jobs = MakeJobs(tenants, heavy, light, rows_a);
  const size_t sessions = jobs.size();
  report.Add("sessions", static_cast<int64_t>(sessions));

  ServiceOutcome svc =
      RunService(jobs, workers, max_resident, min_steps_evict, threads);
  const double sessions_per_hour =
      svc.wall_s > 0.0 ? static_cast<double>(svc.stats.completed) /
                             (svc.wall_s / 3600.0)
                       : 0.0;
  report.Add("service/wall_s", svc.wall_s);
  report.Add("service/sessions_per_hour", sessions_per_hour);
  report.Add("service/step_p50_ms", svc.p50_ms);
  report.Add("service/step_p99_ms", svc.p99_ms);
  report.Add("service/steps", static_cast<int64_t>(svc.stats.steps));
  report.Add("service/completed", static_cast<int64_t>(svc.stats.completed));
  report.Add("service/failed", static_cast<int64_t>(svc.stats.failed));
  report.Add("service/evictions", static_cast<int64_t>(svc.stats.evictions));
  report.Add("service/resumes", static_cast<int64_t>(svc.stats.resumes));
  report.Add("service/peak_resident",
             static_cast<int64_t>(svc.stats.peak_resident));
  report.Add("service/machine_vtime_ratio", svc.fairness.machine_ratio);
  report.Add("service/vruntime_ratio", svc.fairness.vruntime_ratio);

  // Baseline runs the same mix through bare sessions, round-robin.
  for (const Job& job : jobs) job.crowd->ResetAccounting();
  BaselineOutcome base = RunBaseline(jobs, threads);
  report.Add("baseline/wall_s", base.wall_s);
  report.Add("baseline/resident_sessions",
             static_cast<int64_t>(base.resident));
  report.Add("baseline/machine_vtime_ratio", base.fairness.machine_ratio);

  std::printf("service : %zu sessions in %.1f s (%.0f sessions/hour), "
              "step p50 %.1f ms p99 %.1f ms\n",
              sessions, svc.wall_s, sessions_per_hour, svc.p50_ms,
              svc.p99_ms);
  std::printf("service : peak resident %zu (cap %zu), %llu evictions, "
              "%llu resumes, %llu failed\n",
              svc.stats.peak_resident, max_resident,
              static_cast<unsigned long long>(svc.stats.evictions),
              static_cast<unsigned long long>(svc.stats.resumes),
              static_cast<unsigned long long>(svc.stats.failed));
  std::printf("fairness: service max/min tenant machine-vtime %.2fx "
              "(%.1fs/%.1fs, vruntime %.2fx); baseline round-robin %.2fx "
              "with all %zu sessions resident\n",
              svc.fairness.machine_ratio, svc.fairness.machine_max_s,
              svc.fairness.machine_min_s, svc.fairness.vruntime_ratio,
              base.fairness.machine_ratio, base.resident);

  bool ok = true;
  if (svc.stats.peak_resident > max_resident) {
    std::fprintf(stderr, "FAIL: peak resident %zu exceeded admission cap\n",
                 svc.stats.peak_resident);
    ok = false;
  }
  if (svc.stats.failed != 0) {
    std::fprintf(stderr, "FAIL: %llu sessions failed\n",
                 static_cast<unsigned long long>(svc.stats.failed));
    ok = false;
  }
  // The fairness gate is only meaningful at scale: tiny smoke runs finish
  // sessions before shares settle.
  if (!smoke && tenants >= 32) {
    if (!svc.fairness.valid || svc.fairness.machine_ratio > 1.5) {
      std::fprintf(stderr, "FAIL: service fairness ratio %.2f > 1.5\n",
                   svc.fairness.machine_ratio);
      ok = false;
    }
    if (base.fairness.valid &&
        base.fairness.machine_ratio < 2.0 * svc.fairness.machine_ratio) {
      std::fprintf(stderr,
                   "FAIL: baseline ratio %.2f not >= 2x service ratio %.2f\n",
                   base.fairness.machine_ratio, svc.fairness.machine_ratio);
      ok = false;
    }
  }
  report.Add("acceptance/resident_le_cap",
             static_cast<int64_t>(svc.stats.peak_resident <= max_resident));
  report.Add("acceptance/fair_ratio_le_1_5",
             static_cast<int64_t>(svc.fairness.valid &&
                                  svc.fairness.machine_ratio <= 1.5));
  report.Write();
  return ok ? 0 : 1;
}
