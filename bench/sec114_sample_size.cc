// Section 11.4: effect of the sample size |S|.
//
// Paper: growing the sample from 500K to 2M has negligible effect on F1 and
// only slightly increases run time and cost — 1M (or even 500K) is a good
// default. Here the sweep covers the same 4x range at bench scale.
#include <cstdio>

#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  uint64_t seed = flags.GetInt("seed", 100);
  std::string dataset = flags.GetString("dataset", "songs");

  std::printf("=== Section 11.4: sample size sweep (%s) ===\n",
              dataset.c_str());
  TablePrinter table({"|S|", "F1(%)", "Blk.Recall(%)", "Total time", "Cost"});
  BenchReport report("sec114_sample_size");
  report.Add("scale", scale);
  auto data = GenerateByName(dataset, DatasetOptions(dataset, scale, seed));
  FalconConfig base = BenchFalconConfig(scale, seed);
  for (double mult : {0.5, 1.0, 2.0}) {
    FalconConfig cfg = base;
    cfg.sample_size = static_cast<size_t>(base.sample_size * mult);
    auto result = RunPipeline(*data, cfg, BenchCrowdConfig(0.05, seed),
                              BenchClusterConfig());
    if (!result.ok()) {
      std::fprintf(stderr, "|S|x%.1f: %s\n", mult,
                   result.status().ToString().c_str());
      continue;
    }
    table.AddRow({std::to_string(cfg.sample_size), Pct(result->quality.f1),
                  Pct(result->blocking_recall),
                  result->metrics.total_time.ToString(),
                  Money(result->metrics.cost)});
    std::string base = "sample_" + std::to_string(cfg.sample_size);
    report.Add(base + "/f1", result->quality.f1);
    AddLoadMetrics(&report, base, result->metrics);
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: F1 and blocking recall are insensitive to the\n"
      "sample size over a 4x range; time grows only mildly.\n");
  report.Write();
  return 0;
}
