// Section 3.4: the crowd-cost cap C_max and the crowd-time bound.
//
// Paper: C_max = (2*n_m*v_m + k*n_e*v_e) * h * q * c = $349.60 with
// n_m=29, v_m=3, k=20, n_e=5, v_e=7, h=2, q=10, c=$0.02; Proposition 2
// bounds eval_rules at 20 iterations/rule even uncapped; Proposition 3
// bounds crowd time by t_a(2*k*q1 + 20*n*q2).
#include <cstdio>

#include "core/eval_rules.h"
#include "crowd/crowd.h"
#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  (void)flags;

  std::printf("=== Section 3.4: crowd cost cap ===\n\n");
  CostCapParams p;
  std::printf("C_max = (2*%d*%d + %d*%d*%d) * %d * %d * $%.2f = %s\n",
              p.n_m, p.v_m, p.k, p.n_e, p.v_e, p.h, p.q, p.c,
              Money(ComputeCostCap(p)).c_str());
  std::printf("Paper value: $349.60 -> %s\n\n",
              ComputeCostCap(p) == 349.60 ? "MATCH" : "MISMATCH");

  // Proposition 2: minimal n guaranteeing a decision at eps_max=0.05.
  double z = ZValue(0.95);
  double n_min = z * z / (4 * 0.05 * 0.05);
  std::printf("Proposition 2: eps <= z*sqrt(1/(4n)) <= 0.05 requires n >= "
              "%.0f labels = %.0f iterations of 20 pairs (paper: 384 labels, "
              "20 iterations)\n\n",
              n_min, std::ceil(n_min / 20.0));

  // Empirical check: even a maximally ambiguous rule (P ~= P_min) decides
  // within 20 iterations when the per-rule cap is lifted.
  std::vector<PairQuestion> pairs;
  for (uint32_t i = 0; i < 200000; ++i) pairs.emplace_back(i, i);
  auto oracle = [](RowId a, RowId) { return a % 20 == 0; };  // P = 0.95
  SimulatedCrowdConfig ccfg;
  ccfg.error_rate = 0.0;
  ccfg.budget_cap = 1e9;
  SimulatedCrowd crowd(ccfg, oracle);
  Rule rule;
  rule.predicates = {{0, 0, PredOp::kLe, 1.0}};
  Bitmap cov(pairs.size());
  for (uint32_t i = 0; i < pairs.size(); ++i) cov.Set(i);
  rule.coverage = cov.Count();
  EvalRulesOptions opts;
  opts.max_iterations_per_rule = 1000;  // uncapped
  Rng rng(1);
  auto r = EvalRules({rule}, {cov}, pairs, &crowd, opts, &rng);
  if (r.ok()) {
    std::printf("Empirical worst-case rule (P ~= P_min): decided after %zu "
                "questions = %.0f iterations (bound: 20)\n",
                r->questions, std::ceil(r->questions / 20.0));
  }

  // Proposition 3 upper bound on crowd time, with the paper's parameters
  // and a 1.5-minute-per-20-pair labeling rate.
  double t_a = 90.0 / 20.0;  // seconds per pair at bench latency
  int k = 30, q1 = 20, n = 20, q2 = 20;
  VDuration bound = VDuration::Seconds(t_a * (2.0 * k * q1 + 20.0 * n * q2));
  std::printf("\nProposition 3 crowd-time bound at bench latency: %s "
              "(regardless of table size)\n",
              bound.ToString().c_str());
  return 0;
}
