// Table 5: effect of the masking optimizations on unmasked machine time.
//
// Paper: unoptimized machine time U (18m / 2h 12m / 1h 46m) drops to
// O (16m / 39m / 40m) — reductions of 11-70% — and each ablated column
// (O-O1 index prebuild, O-O2 speculative execution, O-O3 pair-selection
// masking) sits between O and U.
#include <cstdio>

#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

namespace {

VDuration UnmaskedTime(const char* name, double scale, double error,
                       uint64_t seed, bool masking, bool o1, bool o2,
                       bool o3, BenchReport* report, const char* config) {
  auto data = GenerateByName(name, DatasetOptions(name, scale, seed));
  FalconConfig cfg = BenchFalconConfig(scale, seed);
  cfg.enable_masking = masking;
  cfg.mask_index_building = o1;
  cfg.mask_speculative_execution = o2;
  cfg.mask_pair_selection = o3;
  // Drop the run-time term from sequence scoring for this ablation: with
  // gamma > 0 the selected sequence depends on MEASURED per-rule times, so
  // the U and O runs can pick different sequences with very different
  // candidate sets, and that variance swamps the masking signal this table
  // is meant to isolate. With gamma = 0 every config learns the identical
  // plan and only the schedule differs.
  cfg.score_gamma = 0.0;
  auto result = RunPipeline(*data, cfg, BenchCrowdConfig(error, seed),
                            BenchClusterConfig());
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", name,
                 result.status().ToString().c_str());
    return VDuration::Zero();
  }
  std::string base = std::string(name) + "/" + config;
  report->Add(base + "/unmasked_seconds",
              result->metrics.machine_unmasked.seconds);
  AddLoadMetrics(report, base, result->metrics);
  return result->metrics.machine_unmasked;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // 15 full pipeline runs (5 configs x 3 datasets): default to a slightly
  // smaller scale than the other benches to keep the suite's wall time
  // reasonable; the U-vs-O shape is scale-independent.
  double scale = flags.GetDouble("scale", 0.75);
  double error = flags.GetDouble("error", 0.05);
  uint64_t seed = flags.GetInt("seed", 100);

  std::printf("=== Table 5: masking optimizations vs unmasked machine time "
              "===\n(U = all masking off; O = all on; O-Ox = optimization x "
              "ablated)\n\n");
  BenchReport report("table5_masking");
  report.Add("scale", scale);
  TablePrinter table(
      {"Dataset", "U", "O", "Reduction", "O-O1", "O-O2", "O-O3"});
  for (const char* name : {"products", "songs", "citations"}) {
    VDuration u = UnmaskedTime(name, scale, error, seed, false, false,
                               false, false, &report, "U");
    VDuration o = UnmaskedTime(name, scale, error, seed, true, true, true,
                               true, &report, "O");
    VDuration o1 = UnmaskedTime(name, scale, error, seed, true, false, true,
                                true, &report, "O-O1");
    VDuration o2 = UnmaskedTime(name, scale, error, seed, true, true, false,
                                true, &report, "O-O2");
    VDuration o3 = UnmaskedTime(name, scale, error, seed, true, true, true,
                                false, &report, "O-O3");
    double reduction =
        u.seconds > 0 ? (u.seconds - o.seconds) / u.seconds : 0.0;
    table.AddRow({name, u.ToString(), o.ToString(),
                  Pct(reduction, 0) + "%", o1.ToString(), o2.ToString(),
                  o3.ToString()});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: O < U (11-70%% reduction in the paper); every\n"
      "single-ablation column lies between O and U.\n");
  report.Write();
  return 0;
}
