// Microbenchmarks: forest training/prediction and MapReduce overhead.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "learn/random_forest.h"
#include "mapreduce/job.h"

namespace falcon {
namespace {

struct TrainData {
  std::vector<FeatureVec> x;
  std::vector<char> y;

  explicit TrainData(size_t n, size_t features) {
    Rng rng(11);
    for (size_t i = 0; i < n; ++i) {
      FeatureVec fv(features);
      for (auto& v : fv) v = rng.NextDouble();
      y.push_back(fv[0] + fv[1] > 1.0 ? 1 : 0);
      x.push_back(std::move(fv));
    }
  }
};

void BM_ForestTrain(benchmark::State& state) {
  TrainData data(static_cast<size_t>(state.range(0)), 20);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RandomForest::Train(data.x, data.y, ForestOptions{}, &rng));
  }
}
BENCHMARK(BM_ForestTrain)->Arg(100)->Arg(600)->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  static TrainData* data = new TrainData(600, 20);
  static Rng* rng = new Rng(5);
  static RandomForest forest =
      RandomForest::Train(data->x, data->y, ForestOptions{}, rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(data->x[i++ % data->x.size()]));
  }
}
BENCHMARK(BM_ForestPredict);

void BM_ForestDisagreement(benchmark::State& state) {
  static TrainData* data = new TrainData(600, 20);
  static Rng* rng = new Rng(5);
  static RandomForest forest =
      RandomForest::Train(data->x, data->y, ForestOptions{}, rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        forest.Disagreement(data->x[i++ % data->x.size()]));
  }
}
BENCHMARK(BM_ForestDisagreement);

void BM_MapReduceOverhead(benchmark::State& state) {
  // Cost of the framework itself: trivial map over N ints.
  std::vector<int> input(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < input.size(); ++i) input[i] = static_cast<int>(i);
  for (auto _ : state) {
    Cluster cluster((ClusterConfig()));
    auto r = RunMapReduce<int, int, int, int>(
        &cluster, input, {.name = "overhead"},
        [](const int& v, Emitter<int, int>* em) { em->Emit(v % 64, v); },
        [](const int&, const ValueList<int>& vals, TaskVector<int>* out) {
          out->push_back(static_cast<int>(vals.size()));
        });
    benchmark::DoNotOptimize(r.output);
  }
}
BENCHMARK(BM_MapReduceOverhead)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace falcon

BENCHMARK_MAIN();
