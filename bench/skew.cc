// Skew-aware sharded blocking: load-balance A/B of the shuffle partitioners.
//
// A Zipf-heavy vocabulary concentrates title tokens on a few head words, so
// a handful of A rows own most of the candidate pairs after prefix
// filtering; under the stable FNV shuffle whichever reduce partitions those
// hot blocks hash to become stragglers. This bench builds a uniform and a
// Zipf products workload, runs the index-backed blocking apply under both
// partitioners, and reports the per-task reduce-load distribution (max /
// mean / p99 task vtime, straggler ratio), the build-time BlockProfile the
// split decisions key off, and the headline reduce-makespan speedup. It also
// re-asserts the determinism contract: candidates must be byte-identical
// across partitioners and across local_threads {1, 4}, or the bench exits
// with an error.
//
// Acceptance shape: at high Zipf skew the skew partitioner's straggler
// ratio is <= 1.2 and the FNV reduce makespan is >= 2x the skew one. The
// uniform lane is the low-load control: with the same tables but a flat
// vocabulary almost every pair is pruned, tasks are overhead-dominated, and
// both partitioners land within measurement noise of each other — its value
// is the byte-identity check, not the makespan numbers.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "blocking/apply.h"
#include "blocking/filters.h"
#include "blocking/index_builder.h"
#include "harness.h"
#include "mapreduce/cluster.h"
#include "rules/feature.h"
#include "rules/rule.h"

using namespace falcon;
using namespace falcon::bench;

namespace {

// One workload's fixed inputs: data, features, the single-rule blocking
// sequence (low title similarity -> drop), and the prebuilt index catalog.
// The catalog is built once on a throwaway cluster — index build happens
// inside the crowd-masking window and is not part of the apply A/B.
struct Setup {
  GeneratedDataset data;
  FeatureSet fs;
  RuleSequence seq;
  IndexCatalog catalog;

  Setup(const WorkloadOptions& opt, double threshold) {
    data = GenerateProducts(opt);
    fs = FeatureSet::Generate(data.a, data.b);
    int jac_title = -1;
    for (const auto& f : fs.features()) {
      if (f.fn == SimFunction::kJaccard && f.tok == Tokenization::kWord &&
          f.name.find("(title,title)") != std::string::npos) {
        jac_title = f.id;
      }
    }
    if (jac_title < 0) {
      std::fprintf(stderr, "skew bench: no jaccard(title,title) feature\n");
      std::exit(1);
    }
    Rule r;
    r.predicates = {{jac_title, jac_title, PredOp::kLe, threshold}};
    r.selectivity = 0.05;
    seq.rules = {r};
    seq.selectivity = 0.05;

    Cluster build_cluster(BenchClusterConfig(1));
    IndexBuilder builder(&data.a, &build_cluster);
    builder.Ensure(IndexBuilder::NeedsOfCnf(ToCnf(seq), fs), &catalog);
  }
};

struct RunOutcome {
  ApplyResult result;
  bool ok = false;
};

RunOutcome RunOnce(const Setup& s, ShufflePartitioner part, int threads,
                   int nodes, size_t budget) {
  ClusterConfig ccfg = BenchClusterConfig(threads);
  ccfg.num_nodes = nodes;
  ccfg.skew_pair_budget = budget;
  // Escape the startup-dominated regime (same calibration constant as the
  // cluster-size bench): slow virtual cores make the reduce phase
  // compute-bound, so task placement — the thing the partitioner changes —
  // is what the makespan measures.
  ccfg.core_speed_factor = 200.0;
  ccfg.partitioner = part;
  Cluster cluster(ccfg);
  auto res = ApplyBlockingRules(s.data.a, s.data.b, s.seq, s.fs, s.catalog,
                                &cluster, ApplyMethod::kApplyAll,
                                ApplyOptions{});
  RunOutcome out;
  if (!res.ok()) {
    std::fprintf(stderr, "apply failed (%s): %s\n",
                 ShufflePartitionerName(part),
                 res.status().ToString().c_str());
    return out;
  }
  out.result = std::move(*res);
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke = std::getenv("FALCON_BENCH_SMOKE") != nullptr;
  double scale = flags.GetDouble("scale", smoke ? 0.15 : 1.0);
  uint64_t seed = flags.GetInt("seed", 7);
  int threads = static_cast<int>(flags.GetInt("threads", 0));
  int nodes = static_cast<int>(flags.GetInt("nodes", 10));
  double zipf_s = flags.GetDouble("zipf", 2.2);
  double threshold = flags.GetDouble("threshold", 0.4);
  // Pair budget per reduce shard (0 = auto: total/(bins*4)). The default
  // oversubscribes harder than auto so residual bin imbalance stays small
  // relative to the mean task vtime.
  size_t budget = static_cast<size_t>(flags.GetInt("budget", 1000));

  std::printf("=== Skew-aware sharded blocking: FNV vs skew partitioner ===\n");
  BenchReport report("skew");
  report.Add("scale", scale);
  report.Add("threads", static_cast<int64_t>(threads));
  report.Add("nodes", static_cast<int64_t>(nodes));
  report.Add("zipf_s", zipf_s);
  report.Add("threshold", threshold);
  report.Add("budget", static_cast<int64_t>(budget));

  WorkloadOptions base;
  // Few A rows over many B rows puts the apply job in the regime hashing
  // cannot fix: with ~#blocks <= #reduce slots, whole-block placement is
  // forced to leave slots idle behind the hot blocks, so splitting is the
  // only remedy (Section 7.3's skew discussion).
  base.size_a = static_cast<size_t>(
      flags.GetInt("size_a", static_cast<int64_t>(200 * scale)));
  base.size_b = static_cast<size_t>(
      flags.GetInt("size_b", static_cast<int64_t>(64000 * scale)));
  base.seed = seed;
  report.Add("size_a", static_cast<int64_t>(base.size_a));
  report.Add("size_b", static_cast<int64_t>(base.size_b));

  TablePrinter table({"Workload", "Partitioner", "Reduce makespan",
                      "Max task", "Mean task", "Straggler", "Pairs"});
  bool byte_identical = true;
  double zipf_speedup = 0.0;
  double zipf_skew_straggler = 0.0;

  for (const char* wl : {"uniform", "zipf"}) {
    WorkloadOptions opt = base;
    opt.zipf_s = (std::string(wl) == "zipf") ? zipf_s : 0.0;
    Setup s(opt, threshold);

    RunOutcome fnv = RunOnce(s, ShufflePartitioner::kStableHash, threads,
                             nodes, budget);
    RunOutcome skew = RunOnce(s, ShufflePartitioner::kSkewAware, threads,
                              nodes, budget);
    if (!fnv.ok || !skew.ok) return 1;

    // Determinism contract: both partitioners, serial and 4-thread, emit
    // the same candidate bytes in the same order.
    RunOutcome fnv1 = RunOnce(s, ShufflePartitioner::kStableHash, 1, nodes, budget);
    RunOutcome skew1 = RunOnce(s, ShufflePartitioner::kSkewAware, 1, nodes, budget);
    RunOutcome fnv4 = RunOnce(s, ShufflePartitioner::kStableHash, 4, nodes, budget);
    RunOutcome skew4 = RunOnce(s, ShufflePartitioner::kSkewAware, 4, nodes, budget);
    if (!fnv1.ok || !skew1.ok || !fnv4.ok || !skew4.ok) return 1;
    for (const RunOutcome* o : {&skew, &fnv1, &skew1, &fnv4, &skew4}) {
      if (fnv.result.pairs != o->result.pairs) byte_identical = false;
    }

    const BlockProfile& prof = skew.result.index_profile;
    std::string wls(wl);
    report.Add(wls + "/profile/num_blocks",
               static_cast<int64_t>(prof.num_blocks));
    report.Add(wls + "/profile/max_block",
               static_cast<int64_t>(prof.max_block));
    report.Add(wls + "/profile/p99_block",
               static_cast<int64_t>(prof.p99_block));
    report.Add(wls + "/profile/mean_block", prof.mean_block);
    report.Add(wls + "/profile/est_pairs",
               static_cast<double>(prof.est_pairs));
    report.Add(wls + "/profile/skew", prof.skew);

    struct Row {
      const char* part;
      const RunOutcome* o;
    };
    for (const Row& row : {Row{"fnv", &fnv}, Row{"skew", &skew}}) {
      const JobStats& job = row.o->result.main_job;
      const TaskLoadStats& load = job.reduce_load;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f", load.straggler_ratio);
      table.AddRow({wls, row.part, job.reduce_time.ToString(),
                    VDuration::Seconds(load.max_seconds).ToString(),
                    VDuration::Seconds(load.mean_seconds).ToString(), buf,
                    std::to_string(row.o->result.pairs.size())});
      std::string base_key = wls + "/" + row.part;
      report.Add(base_key + "/reduce_seconds", job.reduce_time.seconds);
      report.Add(base_key + "/apply_seconds", row.o->result.time.seconds);
      report.Add(base_key + "/pairs",
                 static_cast<int64_t>(row.o->result.pairs.size()));
      auto counter = [&job](const char* key) {
        auto it = job.counters.find(key);
        return it == job.counters.end() ? int64_t{0} : it->second;
      };
      report.Add(base_key + "/skew_shards", counter("skew/shards"));
      report.Add(base_key + "/skew_split_blocks",
                 counter("skew/split_blocks"));
      AddLoadMetrics(&report, base_key + "/reduce", load);
    }

    double speedup = skew.result.main_job.reduce_time.seconds > 0.0
                         ? fnv.result.main_job.reduce_time.seconds /
                               skew.result.main_job.reduce_time.seconds
                         : 1.0;
    report.Add(wls + "/reduce_speedup", speedup);
    if (wls == "zipf") {
      zipf_speedup = speedup;
      zipf_skew_straggler =
          skew.result.main_job.reduce_load.straggler_ratio;
    }
  }

  report.Add("byte_identical", static_cast<int64_t>(byte_identical ? 1 : 0));
  table.Print();
  std::printf(
      "\nZipf workload: skew partitioner straggler ratio %.2f, reduce "
      "makespan speedup %.2fx over FNV.\n",
      zipf_skew_straggler, zipf_speedup);
  if (!byte_identical) {
    std::fprintf(stderr,
                 "FAIL: candidates differ across partitioners/threads\n");
    return 1;
  }
  report.Write();
  return 0;
}
