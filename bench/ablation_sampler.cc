// Ablation (DESIGN.md): the token-biased sampler of Section 5 vs naive
// uniform sampling.
//
// The paper argues uniform samples of A x B contain almost no matching
// pairs, starving active learning; its sampler pairs each sampled B tuple
// with y/2 token-sharing A tuples. This bench quantifies the difference:
// positives in S, and the end-to-end effect on blocking recall and F1.
#include <cstdio>

#include "core/sample_pairs.h"
#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  uint64_t seed = flags.GetInt("seed", 100);

  std::printf("=== Ablation: token-biased sampling (Section 5) vs uniform "
              "===\n\n");
  TablePrinter table({"Dataset", "Sampler", "Matches in S", "F1(%)",
                      "Blk.Recall(%)", "Outcome"});
  BenchReport report("ablation_sampler");
  report.Add("scale", scale);
  // Products only: a uniform-sampled run can learn a near-useless blocker,
  // and on the bigger datasets the resulting huge candidate set makes the
  // demonstration needlessly expensive — the failure shows just as clearly
  // here.
  for (const char* name : {"products"}) {
    auto data = GenerateByName(name, DatasetOptions(name, scale, seed));
    for (auto strategy :
         {SampleStrategy::kTokenBiased, SampleStrategy::kUniformRandom}) {
      FalconConfig cfg = BenchFalconConfig(scale, seed);
      cfg.sample_strategy = strategy;
      // Count positives in the sample first (cheap, separate cluster).
      Cluster probe_cluster(BenchClusterConfig());
      Rng rng(seed);
      auto sample = SamplePairs(data->a, data->b, cfg.sample_size,
                                cfg.sample_y, &probe_cluster, &rng,
                                strategy);
      size_t in_sample = 0;
      if (sample.ok()) {
        for (auto [a, b] : sample->pairs) {
          in_sample += data->truth.IsMatch(a, b) ? 1 : 0;
        }
      }
      auto result = RunPipeline(*data, cfg, BenchCrowdConfig(0.05, seed),
                                BenchClusterConfig());
      const char* label = strategy == SampleStrategy::kTokenBiased
                              ? "token-biased"
                              : "uniform";
      if (!result.ok()) {
        table.AddRow({name, label, std::to_string(in_sample), "-", "-",
                      result.status().ToString().substr(0, 36)});
        continue;
      }
      table.AddRow({name, label, std::to_string(in_sample),
                    Pct(result->quality.f1), Pct(result->blocking_recall),
                    "ok"});
      std::string base = std::string(name) + "/" + label;
      report.Add(base + "/f1", result->quality.f1);
      AddLoadMetrics(&report, base, result->metrics);
    }
  }
  table.Print();
  std::printf(
      "\nShape check: uniform samples contain a handful of positives (or\n"
      "none), so the learned blocker is weak or learning fails outright;\n"
      "the Section 5 sampler seeds S with enough matches to learn from.\n");
  report.Write();
  return 0;
}
