// Section 11.2 (apply_blocking_rules): the six physical operators compared,
// plus the mapper-memory sweep.
//
// Paper shape: apply_all fastest when its indexes fit (e.g. 10m 19s vs
// 1h 3m / 1h 40m / 1h 45m for AG/AC/AP on a Songs run); MapSide/ReduceSplit
// only complete on the smallest data set and are killed elsewhere; under
// reduced memory (2G -> 1G -> 500M) AA/AG/AC stop fitting while AP still
// works; Falcon's selection rule usually picks the best operator.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "blocking/apply.h"
#include "blocking/index_builder.h"
#include "core/pipeline.h"
#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

namespace {

/// Learns a blocking-rule sequence by running the pipeline once.
Result<RuleSequence> LearnSequence(const GeneratedDataset& data,
                                   double scale, uint64_t seed, int threads) {
  auto run =
      RunPipeline(data, BenchFalconConfig(scale, seed),
                  BenchCrowdConfig(0.05, seed), BenchClusterConfig(threads));
  if (!run.ok()) return run.status();
  if (run->sequence.rules.empty()) {
    return Status::Internal("pipeline produced no rule sequence");
  }
  return run->sequence;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  uint64_t seed = flags.GetInt("seed", 100);
  int threads = static_cast<int>(flags.GetInt("threads", 0));
  // Virtual kill limit for the enumerate-A-x-B baselines.
  VDuration limit = VDuration::Minutes(flags.GetDouble("kill-minutes", 60));

  std::printf("=== Section 11.2: physical operators for apply_blocking_rules "
              "===\n\n");
  BenchReport report("sec112_physical_ops");
  report.Add("scale", scale);
  report.Add("threads", static_cast<int64_t>(threads));
  for (const char* name : {"products", "songs", "citations"}) {
    auto data = GenerateByName(name, DatasetOptions(name, scale, seed));
    auto seq = LearnSequence(*data, scale, seed, threads);
    if (!seq.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, seq.status().ToString().c_str());
      continue;
    }
    FeatureSet fs = FeatureSet::Generate(data->a, data->b);
    std::printf("--- %s (%zu rules in sequence) ---\n", name,
                seq->rules.size());

    TablePrinter table({"Memory", "Operator", "Virtual time",
                        "Pairs examined", "Candidates", "Selected?"});
    const double paper_pairs = 1e12;  // ~1M x 1M (Songs)
    const double bench_pairs = static_cast<double>(data->a.num_rows()) *
                               static_cast<double>(data->b.num_rows());
    // Memory sweep mirroring the paper's 2G / 1G / 500M.
    for (size_t mem_mb : {8, 2, 1}) {
      ClusterConfig ccfg = BenchClusterConfig(threads);
      ccfg.mapper_memory_bytes = mem_mb * 1024 * 1024;
      Cluster cluster(ccfg);
      IndexCatalog catalog;
      IndexBuilder builder(&data->a, &cluster);
      CnfRule q = ToCnf(*seq);
      // Token stores + bound features: the operators below run the
      // dictionary-encoded path, as the pipeline does. The catalog is
      // per-iteration, so unbind before it is destroyed (end of loop body).
      builder.EnsureTokenStores(data->b, fs, &catalog);
      builder.Ensure(IndexBuilder::NeedsOfCnf(q, fs), &catalog);
      fs.BindTokenStores(catalog.store(&data->a), catalog.store(&data->b));
      ApplyMethod chosen =
          SelectApplyMethod(data->a, data->b, *seq, fs, catalog, cluster);
      for (ApplyMethod m :
           {ApplyMethod::kApplyAll, ApplyMethod::kApplyGreedy,
            ApplyMethod::kApplyConjunct, ApplyMethod::kApplyPredicate,
            ApplyMethod::kMapSide, ApplyMethod::kReduceSplit}) {
        ApplyOptions opts;
        // The bench data is ~1e5x smaller than the paper's, so enumeration
        // is survivable here; the kill limit is applied to the virtual time
        // EXTRAPOLATED to paper scale for the enumerate-A-x-B baselines
        // (their work is exactly proportional to |A|x|B|).
        bool baseline =
            m == ApplyMethod::kMapSide || m == ApplyMethod::kReduceSplit;
        auto res = ApplyBlockingRules(data->a, data->b, *seq, fs, catalog,
                                      &cluster, m, opts);
        std::string time;
        std::string cands;
        std::string examined;
        if (res.ok()) {
          time = res->time.ToString();
          cands = std::to_string(res->pairs.size());
          examined = std::to_string(res->candidates_examined);
          std::string base = std::string(name) + "/" +
                             std::to_string(mem_mb) + "MB/" +
                             ApplyMethodName(m);
          report.Add(base + "/virtual_seconds", res->time.seconds);
          report.Add(base + "/candidates",
                     static_cast<int64_t>(res->pairs.size()));
          AddLoadMetrics(&report, base + "/reduce",
                         res->main_job.reduce_load);
          if (baseline) {
            VDuration at_paper_scale =
                res->time * (paper_pairs / bench_pairs);
            if (at_paper_scale > limit) {
              time += " [KILLED at paper scale: " +
                      at_paper_scale.ToString() + "]";
            }
          }
        } else if (res.status().code() == StatusCode::kCancelled) {
          time = "KILLED (>" + limit.ToString() + ")";
          cands = "-";
          examined = "-";
        } else {
          time = res.status().ToString().substr(0, 40);
          cands = "-";
          examined = "-";
        }
        table.AddRow({std::to_string(mem_mb) + "MB", ApplyMethodName(m),
                      time, examined, cands,
                      m == chosen ? "<- selected" : ""});
      }
      fs.BindTokenStores(nullptr, nullptr);
    }
    table.Print();

    // A/B: dictionary-encoded (token-store) path vs string path, SAME learned
    // sequence, SAME process. A cross-process comparison would be invalid:
    // rule learning spends a crowd budget credited from measured CPU time, so
    // the learned sequence varies run to run. Here the sequence is fixed, the
    // candidate sets must be byte-identical, and the virtual times show what
    // the token stores buy.
    {
      ClusterConfig ccfg = BenchClusterConfig(threads);
      // One node, one slot: the virtual makespan is then the undiluted
      // serial CPU of the operator plus (identical) fixed overheads. With
      // the default 80-slot cluster, per-slot CPU at bench scale is a few
      // ms and disappears under per-task scheduling overhead.
      ccfg.num_nodes = 1;
      ccfg.map_slots_per_node = 1;
      ccfg.reduce_slots_per_node = 1;
      Cluster cluster(ccfg);
      IndexCatalog with_store;  ///< store views + indexes: id-path probing
      IndexCatalog fallback;    ///< indexes only: tokenize+Find probing
      IndexBuilder builder(&data->a, &cluster);
      CnfRule q = ToCnf(*seq);
      builder.EnsureTokenStores(data->b, fs, &with_store);
      builder.Ensure(IndexBuilder::NeedsOfCnf(q, fs), &with_store);
      builder.Ensure(IndexBuilder::NeedsOfCnf(q, fs), &fallback);
      ApplyMethod m =
          SelectApplyMethod(data->a, data->b, *seq, fs, with_store, cluster);
      ApplyOptions opts;
      fs.BindTokenStores(with_store.store(&data->a),
                         with_store.store(&data->b));
      auto r_store = ApplyBlockingRules(data->a, data->b, *seq, fs,
                                        with_store, &cluster, m, opts);
      fs.BindTokenStores(nullptr, nullptr);
      auto r_str = ApplyBlockingRules(data->a, data->b, *seq, fs, fallback,
                                      &cluster, m, opts);
      if (r_store.ok() && r_str.ok()) {
        auto ps = r_store->pairs;
        auto pf = r_str->pairs;
        std::sort(ps.begin(), ps.end());
        std::sort(pf.begin(), pf.end());
        if (ps != pf) {
          std::fprintf(stderr,
                       "FATAL: %s: store/string candidate sets differ "
                       "(%zu vs %zu pairs)\n",
                       name, ps.size(), pf.size());
          return 1;
        }
        std::string base = std::string(name) + "/ab";
        report.Add(base + "/operator", ApplyMethodName(m));
        report.Add(base + "/candidates", static_cast<int64_t>(ps.size()));
        report.Add(base + "/store_virtual_seconds", r_store->time.seconds);
        report.Add(base + "/string_virtual_seconds", r_str->time.seconds);
        report.Add(base + "/speedup",
                   r_store->time.seconds > 0.0
                       ? r_str->time.seconds / r_store->time.seconds
                       : 0.0);
        // Work time = map + shuffle + reduce, excluding the fixed 2s job
        // startup that dominates total time at bench scale. Startup and
        // per-task overhead are identical by construction (same job shape),
        // so the work-time ratio isolates what the id path buys.
        double w_store =
            (r_store->main_job.Total() - r_store->main_job.startup).seconds;
        double w_str =
            (r_str->main_job.Total() - r_str->main_job.startup).seconds;
        report.Add(base + "/store_work_seconds", w_store);
        report.Add(base + "/string_work_seconds", w_str);
        report.Add(base + "/work_speedup", w_store > 0.0 ? w_str / w_store
                                                         : 0.0);
        std::printf("A/B (%s, %zu identical candidates): store path %s vs "
                    "string path %s\n",
                    ApplyMethodName(m), ps.size(),
                    r_store->time.ToString().c_str(),
                    r_str->time.ToString().c_str());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Shape check vs paper: index-based operators beat the baselines by\n"
      "orders of magnitude; the baselines get killed on the larger sets;\n"
      "as memory shrinks apply_all stops fitting before apply_conjunct,\n"
      "which stops before apply_predicate; Falcon's rule selects a fitting\n"
      "fast operator at every memory level.\n");
  report.Write();
  return 0;
}
