// Section 11.2 (apply_blocking_rules): the six physical operators compared,
// plus the mapper-memory sweep.
//
// Paper shape: apply_all fastest when its indexes fit (e.g. 10m 19s vs
// 1h 3m / 1h 40m / 1h 45m for AG/AC/AP on a Songs run); MapSide/ReduceSplit
// only complete on the smallest data set and are killed elsewhere; under
// reduced memory (2G -> 1G -> 500M) AA/AG/AC stop fitting while AP still
// works; Falcon's selection rule usually picks the best operator.
#include <cstdio>

#include "blocking/apply.h"
#include "blocking/index_builder.h"
#include "core/pipeline.h"
#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

namespace {

/// Learns a blocking-rule sequence by running the pipeline once.
Result<RuleSequence> LearnSequence(const GeneratedDataset& data,
                                   double scale, uint64_t seed, int threads) {
  auto run =
      RunPipeline(data, BenchFalconConfig(scale, seed),
                  BenchCrowdConfig(0.05, seed), BenchClusterConfig(threads));
  if (!run.ok()) return run.status();
  if (run->sequence.rules.empty()) {
    return Status::Internal("pipeline produced no rule sequence");
  }
  return run->sequence;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  uint64_t seed = flags.GetInt("seed", 100);
  int threads = static_cast<int>(flags.GetInt("threads", 0));
  // Virtual kill limit for the enumerate-A-x-B baselines.
  VDuration limit = VDuration::Minutes(flags.GetDouble("kill-minutes", 60));

  std::printf("=== Section 11.2: physical operators for apply_blocking_rules "
              "===\n\n");
  BenchReport report("sec112_physical_ops");
  report.Add("scale", scale);
  report.Add("threads", static_cast<int64_t>(threads));
  for (const char* name : {"products", "songs", "citations"}) {
    auto data = GenerateByName(name, DatasetOptions(name, scale, seed));
    auto seq = LearnSequence(*data, scale, seed, threads);
    if (!seq.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, seq.status().ToString().c_str());
      continue;
    }
    FeatureSet fs = FeatureSet::Generate(data->a, data->b);
    std::printf("--- %s (%zu rules in sequence) ---\n", name,
                seq->rules.size());

    TablePrinter table({"Memory", "Operator", "Virtual time",
                        "Pairs examined", "Candidates", "Selected?"});
    const double paper_pairs = 1e12;  // ~1M x 1M (Songs)
    const double bench_pairs = static_cast<double>(data->a.num_rows()) *
                               static_cast<double>(data->b.num_rows());
    // Memory sweep mirroring the paper's 2G / 1G / 500M.
    for (size_t mem_mb : {8, 2, 1}) {
      ClusterConfig ccfg = BenchClusterConfig(threads);
      ccfg.mapper_memory_bytes = mem_mb * 1024 * 1024;
      Cluster cluster(ccfg);
      IndexCatalog catalog;
      IndexBuilder builder(&data->a, &cluster);
      CnfRule q = ToCnf(*seq);
      builder.Ensure(IndexBuilder::NeedsOfCnf(q, fs), &catalog);
      ApplyMethod chosen =
          SelectApplyMethod(data->a, data->b, *seq, fs, catalog, cluster);
      for (ApplyMethod m :
           {ApplyMethod::kApplyAll, ApplyMethod::kApplyGreedy,
            ApplyMethod::kApplyConjunct, ApplyMethod::kApplyPredicate,
            ApplyMethod::kMapSide, ApplyMethod::kReduceSplit}) {
        ApplyOptions opts;
        // The bench data is ~1e5x smaller than the paper's, so enumeration
        // is survivable here; the kill limit is applied to the virtual time
        // EXTRAPOLATED to paper scale for the enumerate-A-x-B baselines
        // (their work is exactly proportional to |A|x|B|).
        bool baseline =
            m == ApplyMethod::kMapSide || m == ApplyMethod::kReduceSplit;
        auto res = ApplyBlockingRules(data->a, data->b, *seq, fs, catalog,
                                      &cluster, m, opts);
        std::string time;
        std::string cands;
        std::string examined;
        if (res.ok()) {
          time = res->time.ToString();
          cands = std::to_string(res->pairs.size());
          examined = std::to_string(res->candidates_examined);
          std::string base = std::string(name) + "/" +
                             std::to_string(mem_mb) + "MB/" +
                             ApplyMethodName(m);
          report.Add(base + "/virtual_seconds", res->time.seconds);
          report.Add(base + "/candidates",
                     static_cast<int64_t>(res->pairs.size()));
          if (baseline) {
            VDuration at_paper_scale =
                res->time * (paper_pairs / bench_pairs);
            if (at_paper_scale > limit) {
              time += " [KILLED at paper scale: " +
                      at_paper_scale.ToString() + "]";
            }
          }
        } else if (res.status().code() == StatusCode::kCancelled) {
          time = "KILLED (>" + limit.ToString() + ")";
          cands = "-";
          examined = "-";
        } else {
          time = res.status().ToString().substr(0, 40);
          cands = "-";
          examined = "-";
        }
        table.AddRow({std::to_string(mem_mb) + "MB", ApplyMethodName(m),
                      time, examined, cands,
                      m == chosen ? "<- selected" : ""});
      }
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Shape check vs paper: index-based operators beat the baselines by\n"
      "orders of magnitude; the baselines get killed on the larger sets;\n"
      "as memory shrinks apply_all stops fitting before apply_conjunct,\n"
      "which stops before apply_predicate; Falcon's rule selects a fitting\n"
      "fast operator at every memory level.\n");
  report.Write();
  return 0;
}
