// Section 3.2: key-based blocking (KBB) vs rule-based blocking (RBB) recall.
//
// Paper: extensive KBB effort yields recalls of 72.6 / 98.6 / 38.8% on
// Products / Songs / Citations, while learned rule-based blocking reaches
// 98.09 / 99.99 / 99.67%. Shape: RBB recall is near-perfect everywhere;
// KBB loses real matches wherever keys are dirty or missing.
#include <cstdio>

#include "blocking/kbb.h"
#include "blocking/sorted_neighborhood.h"
#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  uint64_t seed = flags.GetInt("seed", 100);

  std::printf("=== Section 3.2: KBB vs RBB blocking recall ===\n\n");
  TablePrinter table({"Dataset", "KBB key", "KBB recall(%)",
                      "KBB(first-token) recall(%)", "SNB(w=10) recall(%)",
                      "RBB recall(%)", "Paper KBB", "Paper RBB"});
  BenchReport report("sec32_kbb_vs_rbb");
  report.Add("scale", scale);
  struct Setup {
    const char* name;
    const char* key;
    const char* paper_kbb;
    const char* paper_rbb;
  };
  Setup setups[] = {
      {"products", "modelno", "72.6", "98.09"},
      {"songs", "title", "98.6", "99.99"},
      {"citations", "title", "38.8", "99.67"},
  };
  for (const auto& s : setups) {
    auto data = GenerateByName(s.name, DatasetOptions(s.name, scale, seed));
    Cluster cluster(BenchClusterConfig());
    int col = data->a.schema().IndexOf(s.key);
    auto kbb = KeyBasedBlocking(data->a, data->b, col, col, &cluster);
    auto kbb_soft = FirstTokenBlocking(data->a, data->b, col, col, &cluster);
    auto snb =
        SortedNeighborhoodBlocking(data->a, data->b, col, col, 10, &cluster);
    auto rbb = RunPipeline(*data, BenchFalconConfig(scale, seed),
                           BenchCrowdConfig(0.05, seed),
                           BenchClusterConfig());
    std::string rbb_recall = "-";
    if (rbb.ok()) rbb_recall = Pct(rbb->blocking_recall, 2);
    if (rbb.ok()) {
      report.Add(std::string(s.name) + "/rbb_recall", rbb->blocking_recall);
      AddLoadMetrics(&report, s.name, rbb->metrics);
    }
    table.AddRow({s.name, s.key, Pct(BlockingRecall(kbb.pairs, data->truth), 2),
                  Pct(BlockingRecall(kbb_soft.pairs, data->truth), 2),
                  Pct(BlockingRecall(snb.pairs, data->truth), 2),
                  rbb_recall, s.paper_kbb, s.paper_rbb});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: learned rule-based blocking retains (nearly)\n"
      "all true matches; exact-key blocking loses matches to typos and\n"
      "missing keys.\n");
  report.Write();
  return 0;
}
