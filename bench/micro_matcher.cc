// Microbenchmarks: the matching-stage hot path (google-benchmark). The
// custom main() first writes BENCH_micro_matcher.json comparing the eager
// strategy (materialize the full feature vector, vote every tree) against
// the fused one (lazy memoized features + short-circuit FlatForest voting)
// per pair, asserting byte-identical predictions, then runs
// google-benchmark. FALCON_BENCH_SMOKE=1 shrinks the dataset so the binary
// doubles as a ctest smoke test.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <benchmark/benchmark.h>

#include "harness.h"

#include "common/arena.h"
#include "learn/flat_forest.h"
#include "learn/random_forest.h"
#include "rules/feature.h"
#include "workload/generator.h"

namespace falcon {
namespace {

bool SmokeMode() { return std::getenv("FALCON_BENCH_SMOKE") != nullptr; }

/// Dataset, features, eval pairs, and a matcher forest trained on a labeled
/// sample — everything the matching stage consumes, built once.
struct MatcherFixture {
  GeneratedDataset data;
  FeatureSet fs;
  std::vector<PairQuestion> pairs;  ///< evaluation pairs ("candidates")
  RandomForest forest;
  FlatForest flat;

  MatcherFixture() {
    WorkloadOptions opt;
    opt.size_a = SmokeMode() ? 150 : 600;
    opt.size_b = SmokeMode() ? 150 : 600;
    opt.seed = 7;
    opt.missing_rate = 0.05;
    data = GenerateProducts(opt);
    fs = FeatureSet::Generate(data.a, data.b);

    Rng rng(13);
    auto sample = [&](size_t n, std::vector<PairQuestion>* out) {
      for (size_t i = 0; i < n; ++i) {
        out->emplace_back(
            static_cast<RowId>(rng.NextBelow(data.a.num_rows())),
            static_cast<RowId>(rng.NextBelow(data.b.num_rows())));
      }
    };

    // Training sample: random pairs plus the ground-truth matches so both
    // classes are represented.
    std::vector<PairQuestion> train;
    sample(400, &train);
    for (uint64_t key : data.truth.keys()) {
      train.emplace_back(static_cast<RowId>(key >> 32),
                         static_cast<RowId>(key & 0xFFFFFFFFu));
      if (train.size() >= 800) break;
    }
    std::vector<FeatureVec> x;
    std::vector<char> y;
    for (const auto& [a, b] : train) {
      x.push_back(fs.ComputeVector(fs.all_ids(), data.a, a, data.b, b));
      y.push_back(data.truth.IsMatch(a, b) ? 1 : 0);
    }
    forest = RandomForest::Train(x, y, ForestOptions{}, &rng);
    flat = FlatForest::Compile(forest);
    if (!flat.EquivalentTo(forest)) {
      std::fprintf(stderr, "FATAL: FlatForest::Compile not equivalent\n");
      std::exit(1);
    }

    sample(SmokeMode() ? 500 : 5000, &pairs);
  }
};

MatcherFixture* Fixture() {
  static MatcherFixture* fx = new MatcherFixture();
  return fx;
}

void BM_EagerPair(benchmark::State& state) {
  MatcherFixture* fx = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = fx->pairs[i++ % fx->pairs.size()];
    FeatureVec fv =
        fx->fs.ComputeVector(fx->fs.all_ids(), fx->data.a, a, fx->data.b, b);
    benchmark::DoNotOptimize(fx->forest.Predict(fv));
  }
}
BENCHMARK(BM_EagerPair);

void BM_FusedPair(benchmark::State& state) {
  MatcherFixture* fx = Fixture();
  const std::vector<int>& ids = fx->fs.all_ids();
  LazyPairFeatures lazy;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = fx->pairs[i++ % fx->pairs.size()];
    lazy.Begin(&fx->fs, &ids, &fx->data.a, a, &fx->data.b, b);
    benchmark::DoNotOptimize(
        fx->flat.PredictWith([&lazy](int pos) { return lazy.Get(pos); }));
  }
}
BENCHMARK(BM_FusedPair);

// Forest traversal alone (features pre-materialized): isolates the
// short-circuit voting win from the lazy-feature win.
void BM_ForestPredictPooled(benchmark::State& state) {
  MatcherFixture* fx = Fixture();
  static std::vector<FeatureVec>* fvs = [] {
    MatcherFixture* f = Fixture();
    auto* v = new std::vector<FeatureVec>();
    for (size_t i = 0; i < 512 && i < f->pairs.size(); ++i) {
      const auto& [a, b] = f->pairs[i];
      v->push_back(
          f->fs.ComputeVector(f->fs.all_ids(), f->data.a, a, f->data.b, b));
    }
    return v;
  }();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx->forest.Predict((*fvs)[i++ % fvs->size()]));
  }
}
BENCHMARK(BM_ForestPredictPooled);

void BM_FlatForestPredict(benchmark::State& state) {
  MatcherFixture* fx = Fixture();
  static std::vector<FeatureVec>* fvs = [] {
    MatcherFixture* f = Fixture();
    auto* v = new std::vector<FeatureVec>();
    for (size_t i = 0; i < 512 && i < f->pairs.size(); ++i) {
      const auto& [a, b] = f->pairs[i];
      v->push_back(
          f->fs.ComputeVector(f->fs.all_ids(), f->data.a, a, f->data.b, b));
    }
    return v;
  }();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx->flat.Predict((*fvs)[i++ % fvs->size()]));
  }
}
BENCHMARK(BM_FlatForestPredict);

/// Eager-vs-fused comparison written to BENCH_micro_matcher.json.
void WriteComparisonReport() {
  using Clock = std::chrono::steady_clock;
  MatcherFixture* fx = Fixture();
  const std::vector<int>& ids = fx->fs.all_ids();
  const size_t sweeps = SmokeMode() ? 1 : 4;
  const size_t n = fx->pairs.size();

  bench::BenchReport report("micro_matcher");
  report.Add("rows_a", static_cast<int64_t>(fx->data.a.num_rows()));
  report.Add("rows_b", static_cast<int64_t>(fx->data.b.num_rows()));
  report.Add("pairs", static_cast<int64_t>(n));
  report.Add("sweeps", static_cast<int64_t>(sweeps));
  report.Add("vector_width", static_cast<int64_t>(ids.size()));
  report.Add("used_features",
             static_cast<int64_t>(fx->flat.used_features().size()));
  report.Add("num_trees", static_cast<int64_t>(fx->forest.num_trees()));

  // Eager: materialize every vector, vote every tree.
  std::vector<char> eager_pred(n);
  auto t0 = Clock::now();
  for (size_t s = 0; s < sweeps; ++s) {
    for (size_t i = 0; i < n; ++i) {
      const auto& [a, b] = fx->pairs[i];
      FeatureVec fv = fx->fs.ComputeVector(ids, fx->data.a, a, fx->data.b, b);
      eager_pred[i] = fx->forest.Predict(fv) ? 1 : 0;
    }
  }
  auto t1 = Clock::now();

  // Fused: lazy memoized features, short-circuit voting, no vector array.
  // The lazy evaluator carves its buffers from the thread scratch arena, so
  // the only real heap traffic is page acquisition — counted below against
  // the eager path's one materialized vector per pair.
  std::vector<char> fused_pred(n);
  uint64_t features_computed = 0;
  uint64_t trees_voted = 0;
  LazyPairFeatures lazy;
  Arena* scratch = ThreadScratch().arena();
  const uint64_t pages_before = scratch->total_pages_acquired();
  const uint64_t page_bytes_before = scratch->total_page_bytes_acquired();
  auto t2 = Clock::now();
  for (size_t s = 0; s < sweeps; ++s) {
    for (size_t i = 0; i < n; ++i) {
      const auto& [a, b] = fx->pairs[i];
      lazy.Begin(&fx->fs, &ids, &fx->data.a, a, &fx->data.b, b);
      int voted = 0;
      fused_pred[i] = fx->flat.PredictWith(
                          [&lazy](int pos) { return lazy.Get(pos); }, &voted)
                          ? 1
                          : 0;
      features_computed += static_cast<uint64_t>(lazy.computed_count());
      trees_voted += static_cast<uint64_t>(voted);
    }
  }
  auto t3 = Clock::now();
  const uint64_t fused_allocs =
      scratch->total_pages_acquired() - pages_before;
  const uint64_t fused_alloc_bytes =
      scratch->total_page_bytes_acquired() - page_bytes_before;

  if (fused_pred != eager_pred) {
    std::fprintf(stderr,
                 "FATAL: fused predictions diverge from eager over %zu "
                 "pairs\n",
                 n);
    std::exit(1);
  }

  const double per = static_cast<double>(sweeps) * static_cast<double>(n);
  double eager_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / per;
  double fused_ns =
      std::chrono::duration<double, std::nano>(t3 - t2).count() / per;
  double features_per_pair = static_cast<double>(features_computed) / per;
  double trees_per_pair = static_cast<double>(trees_voted) / per;
  report.Add("eager_ns_per_pair", eager_ns);
  report.Add("fused_ns_per_pair", fused_ns);
  report.Add("speedup", fused_ns > 0.0 ? eager_ns / fused_ns : 0.0);
  report.Add("features_per_pair", features_per_pair);
  report.Add("trees_per_pair", trees_per_pair);

  // Eager materializes exactly one FeatureVec heap vector per pair; fused
  // costs only the scratch-arena pages acquired across the whole loop.
  const uint64_t eager_allocs = static_cast<uint64_t>(per);
  const uint64_t eager_alloc_bytes =
      eager_allocs * static_cast<uint64_t>(ids.size() * sizeof(double));
  report.Add("alloc/count", static_cast<int64_t>(fused_allocs));
  report.Add("alloc/bytes", static_cast<int64_t>(fused_alloc_bytes));
  report.Add("alloc/count_eager", static_cast<int64_t>(eager_allocs));
  report.Add("alloc/bytes_eager", static_cast<int64_t>(eager_alloc_bytes));
  double alloc_reduction =
      fused_allocs > 0
          ? static_cast<double>(eager_allocs) /
                static_cast<double>(fused_allocs)
          : static_cast<double>(eager_allocs);
  report.Add("alloc/reduction", alloc_reduction);
  if (fused_allocs * 10 > eager_allocs) {
    std::fprintf(stderr,
                 "FATAL: fused path took %llu heap allocs vs eager %llu, "
                 "not a 10x reduction\n",
                 static_cast<unsigned long long>(fused_allocs),
                 static_cast<unsigned long long>(eager_allocs));
    std::exit(1);
  }

  if (features_per_pair >= static_cast<double>(ids.size())) {
    std::fprintf(stderr,
                 "FATAL: lazy path computed %.2f features/pair, not below "
                 "the full width %zu\n",
                 features_per_pair, ids.size());
    std::exit(1);
  }

  std::string path = report.Write();
  std::printf("wrote %s\n", path.c_str());
  std::printf(
      "eager %.0f ns/pair, fused %.0f ns/pair (%.2fx); %.2f/%zu features, "
      "%.2f/%zu trees per pair\n",
      eager_ns, fused_ns, fused_ns > 0.0 ? eager_ns / fused_ns : 0.0,
      features_per_pair, ids.size(), trees_per_pair,
      fx->forest.num_trees());
  std::printf("allocs: eager %llu, fused %llu (%.0fx fewer)\n",
              static_cast<unsigned long long>(eager_allocs),
              static_cast<unsigned long long>(fused_allocs),
              alloc_reduction);
}

}  // namespace
}  // namespace falcon

int main(int argc, char** argv) {
  falcon::WriteComparisonReport();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
