// Microbenchmarks: index build and probe paths (google-benchmark).
#include <benchmark/benchmark.h>

#include "blocking/filters.h"
#include "blocking/index_builder.h"
#include "index/btree_index.h"
#include "index/hash_index.h"
#include "mapreduce/cluster.h"
#include "workload/generator.h"

namespace falcon {
namespace {

const GeneratedDataset& Data() {
  static GeneratedDataset* data = [] {
    WorkloadOptions opt;
    opt.size_a = 5000;
    opt.size_b = 5000;
    opt.seed = 3;
    return new GeneratedDataset(GenerateProducts(opt));
  }();
  return *data;
}

void BM_HashIndexBuild(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("modelno");
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashIndex::Build(d.a, col));
  }
}
BENCHMARK(BM_HashIndexBuild);

void BM_HashIndexProbe(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("modelno");
  static HashIndex idx = HashIndex::Build(d.a, col);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        idx.Probe(d.b.Get(i++ % d.b.num_rows(), col)));
  }
}
BENCHMARK(BM_HashIndexProbe);

void BM_BTreeBuild(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("price");
  for (auto _ : state) {
    benchmark::DoNotOptimize(BTreeIndex::Build(d.a, col));
  }
}
BENCHMARK(BM_BTreeBuild);

void BM_BTreeRangeProbe(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("price");
  static BTreeIndex idx = BTreeIndex::Build(d.a, col);
  size_t i = 0;
  std::vector<RowId> out;
  for (auto _ : state) {
    out.clear();
    double v = d.b.GetNumeric(i++ % d.b.num_rows(), col);
    if (!std::isnan(v)) idx.ProbeRange(v - 10, v + 10, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BTreeRangeProbe);

struct TokenFixture {
  Cluster cluster;
  IndexCatalog catalog;
  FeatureSet fs;
  Predicate pred;

  TokenFixture() : cluster(ClusterConfig{}) {
    const auto& d = Data();
    fs = FeatureSet::Generate(d.a, d.b);
    int jac = -1;
    for (const auto& f : fs.features()) {
      if (f.fn == SimFunction::kJaccard && f.tok == Tokenization::kWord &&
          f.name.find("(title,title)") != std::string::npos) {
        jac = f.id;
        break;
      }
    }
    pred = Predicate{jac, jac, PredOp::kGt, 0.5};
    IndexBuilder builder(&d.a, &cluster);
    builder.Ensure({ClassifyPredicate(pred, fs)}, &catalog);
  }
};

void BM_TokenIndexBuild(benchmark::State& state) {
  const auto& d = Data();
  TokenFixture fx;
  IndexNeed need = ClassifyPredicate(fx.pred, fx.fs);
  for (auto _ : state) {
    Cluster cluster((ClusterConfig()));
    IndexCatalog catalog;
    IndexBuilder builder(&d.a, &cluster);
    builder.Ensure({need}, &catalog);
    benchmark::DoNotOptimize(catalog.TotalMemoryUsage());
  }
}
BENCHMARK(BM_TokenIndexBuild)->Unit(benchmark::kMillisecond);

void BM_PrefixFilterProbe(benchmark::State& state) {
  const auto& d = Data();
  static TokenFixture* fx = new TokenFixture();
  ClauseProber prober(&fx->catalog, &fx->fs, d.a.num_rows());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.ProbePredicate(
        fx->pred, d.b, static_cast<RowId>(i++ % d.b.num_rows())));
  }
}
BENCHMARK(BM_PrefixFilterProbe);

}  // namespace
}  // namespace falcon

BENCHMARK_MAIN();
