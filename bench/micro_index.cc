// Microbenchmarks: index build and probe paths (google-benchmark). The
// custom main() first writes BENCH_micro_index.json with a store-path vs
// fallback-path (tokenize + dictionary lookup, the old string behaviour)
// probe comparison, then runs google-benchmark. FALCON_BENCH_SMOKE=1 shrinks
// the dataset so the binary doubles as a ctest smoke test.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <benchmark/benchmark.h>

#include "harness.h"

#include "blocking/apply.h"
#include "blocking/filters.h"
#include "blocking/index_builder.h"
#include "text/intersect.h"
#include "index/btree_index.h"
#include "index/hash_index.h"
#include "mapreduce/cluster.h"
#include "workload/generator.h"

namespace falcon {
namespace {

bool SmokeMode() { return std::getenv("FALCON_BENCH_SMOKE") != nullptr; }

const GeneratedDataset& Data() {
  static GeneratedDataset* data = [] {
    WorkloadOptions opt;
    opt.size_a = SmokeMode() ? 300 : 5000;
    opt.size_b = SmokeMode() ? 300 : 5000;
    opt.seed = 3;
    return new GeneratedDataset(GenerateProducts(opt));
  }();
  return *data;
}

void BM_HashIndexBuild(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("modelno");
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashIndex::Build(d.a, col));
  }
}
BENCHMARK(BM_HashIndexBuild);

void BM_HashIndexProbe(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("modelno");
  static HashIndex idx = HashIndex::Build(d.a, col);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        idx.Probe(d.b.Get(i++ % d.b.num_rows(), col)));
  }
}
BENCHMARK(BM_HashIndexProbe);

void BM_BTreeBuild(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("price");
  for (auto _ : state) {
    benchmark::DoNotOptimize(BTreeIndex::Build(d.a, col));
  }
}
BENCHMARK(BM_BTreeBuild);

void BM_BTreeRangeProbe(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("price");
  static BTreeIndex idx = BTreeIndex::Build(d.a, col);
  size_t i = 0;
  std::vector<RowId> out;
  for (auto _ : state) {
    out.clear();
    double v = d.b.GetNumeric(i++ % d.b.num_rows(), col);
    if (!std::isnan(v)) idx.ProbeRange(v - 10, v + 10, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BTreeRangeProbe);

struct TokenFixture {
  Cluster cluster;
  IndexCatalog catalog;    ///< with B-side store views: id-path probing
  IndexCatalog fallback;   ///< indexes only: tokenize+Find fallback probing
  FeatureSet fs;
  Predicate pred;

  TokenFixture() : cluster(ClusterConfig{}) {
    const auto& d = Data();
    fs = FeatureSet::Generate(d.a, d.b);
    int jac = -1;
    for (const auto& f : fs.features()) {
      if (f.fn == SimFunction::kJaccard && f.tok == Tokenization::kWord &&
          f.name.find("(title,title)") != std::string::npos) {
        jac = f.id;
        break;
      }
    }
    pred = Predicate{jac, jac, PredOp::kGt, 0.5};
    IndexBuilder builder(&d.a, &cluster);
    builder.EnsureTokenStores(d.b, fs, &catalog);
    builder.Ensure({ClassifyPredicate(pred, fs)}, &catalog);
    builder.Ensure({ClassifyPredicate(pred, fs)}, &fallback);
  }
};

void BM_TokenIndexBuild(benchmark::State& state) {
  const auto& d = Data();
  TokenFixture fx;
  IndexNeed need = ClassifyPredicate(fx.pred, fx.fs);
  for (auto _ : state) {
    Cluster cluster((ClusterConfig()));
    IndexCatalog catalog;
    IndexBuilder builder(&d.a, &cluster);
    builder.Ensure({need}, &catalog);
    benchmark::DoNotOptimize(catalog.TotalMemoryUsage());
  }
}
BENCHMARK(BM_TokenIndexBuild)->Unit(benchmark::kMillisecond);

TokenFixture* SharedFixture() {
  static TokenFixture* fx = new TokenFixture();
  return fx;
}

void BM_PrefixFilterProbe(benchmark::State& state) {
  const auto& d = Data();
  TokenFixture* fx = SharedFixture();
  ClauseProber prober(&fx->catalog, &fx->fs, d.a.num_rows());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.ProbePredicate(
        fx->pred, d.b, static_cast<RowId>(i++ % d.b.num_rows())));
  }
}
BENCHMARK(BM_PrefixFilterProbe);

void BM_PrefixFilterProbeFallback(benchmark::State& state) {
  const auto& d = Data();
  TokenFixture* fx = SharedFixture();
  ClauseProber prober(&fx->fallback, &fx->fs, d.a.num_rows());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.ProbePredicate(
        fx->pred, d.b, static_cast<RowId>(i++ % d.b.num_rows())));
  }
}
BENCHMARK(BM_PrefixFilterProbeFallback);

/// Store-path vs fallback-path comparison written to BENCH_micro_index.json.
void WriteComparisonReport() {
  using Clock = std::chrono::steady_clock;
  const auto& d = Data();
  TokenFixture* fx = SharedFixture();
  const size_t sweeps = SmokeMode() ? 2 : 10;

  bench::BenchReport report("micro_index");
  report.Add("rows_a", static_cast<int64_t>(d.a.num_rows()));
  report.Add("rows_b", static_cast<int64_t>(d.b.num_rows()));
  report.Add("sweeps", static_cast<int64_t>(sweeps));
  report.Add("catalog_bytes_with_store",
             static_cast<int64_t>(fx->catalog.TotalMemoryUsage()));
  report.Add("catalog_bytes_fallback",
             static_cast<int64_t>(fx->fallback.TotalMemoryUsage()));

  // Same probing work over every B row, both paths; candidates must agree.
  size_t candidates_store = 0;
  size_t candidates_fallback = 0;
  ClauseProber store_prober(&fx->catalog, &fx->fs, d.a.num_rows());
  ClauseProber fb_prober(&fx->fallback, &fx->fs, d.a.num_rows());
  auto t0 = Clock::now();
  for (size_t s = 0; s < sweeps; ++s) {
    for (RowId b = 0; b < d.b.num_rows(); ++b) {
      candidates_store +=
          store_prober.ProbePredicate(fx->pred, d.b, b).rows.size();
    }
  }
  auto t1 = Clock::now();
  for (size_t s = 0; s < sweeps; ++s) {
    for (RowId b = 0; b < d.b.num_rows(); ++b) {
      candidates_fallback +=
          fb_prober.ProbePredicate(fx->pred, d.b, b).rows.size();
    }
  }
  auto t2 = Clock::now();
  if (candidates_store != candidates_fallback) {
    fprintf(stderr, "FATAL: store/fallback candidate mismatch: %zu vs %zu\n",
            candidates_store, candidates_fallback);
    exit(1);
  }
  const double probes =
      static_cast<double>(sweeps) * static_cast<double>(d.b.num_rows());
  double store_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / probes;
  double fb_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count() / probes;
  report.Add("probe/candidates_per_sweep",
             static_cast<int64_t>(candidates_store / sweeps));
  report.Add("probe/store_us_per_row", store_us);
  report.Add("probe/fallback_us_per_row", fb_us);
  report.Add("probe/speedup", store_us > 0.0 ? fb_us / store_us : 0.0);

  // Rule-application A/B: the same Keep() sweep with the adaptive
  // intersection kernels (plus the single-reader threshold fast path) on vs
  // forced onto the scalar merge. Every keep decision must agree — the
  // adaptive path is a pure strategy swap — or the bench exits fatally.
  // The rule uses the word jaccard on descr when generated: description
  // token sets (~18 words per row vs ~7 for titles) clear the fast path's
  // minimum-size gate, so the sweep actually exercises the early-exit
  // threshold kernel instead of bypassing it on every pair.
  {
    int keep_feat = fx->pred.feature_id;
    for (const auto& f : fx->fs.features()) {
      if (f.fn == SimFunction::kJaccard && f.tok == Tokenization::kWord &&
          f.usable_for_blocking &&
          f.name.find("(descr,descr)") != std::string::npos) {
        keep_feat = f.id;
        break;
      }
    }
    RuleSequence seq;
    Rule r;
    r.predicates = {Predicate{keep_feat, keep_feat, PredOp::kGt, 0.5}};
    seq.rules = {r};
    fx->fs.BindTokenStores(fx->catalog.store(&d.a), fx->catalog.store(&d.b));
    RuleApplier applier(seq, &fx->fs, &d.a, &d.b);
    // Strided A sample x every B row keeps the sweep O(seconds) at full size.
    const size_t a_step = std::max<size_t>(d.a.num_rows() / 64, 1);
    auto sweep = [&](std::vector<char>* decisions) {
      decisions->clear();
      for (RowId br = 0; br < d.b.num_rows(); ++br) {
        for (RowId ar = 0; ar < d.a.num_rows();
             ar += static_cast<RowId>(a_step)) {
          decisions->push_back(applier.Keep(ar, br) ? 1 : 0);
        }
      }
    };
    std::vector<char> keep_scalar, keep_adaptive;
    SetIntersectForceScalar(true);
    auto tA = Clock::now();
    sweep(&keep_scalar);
    auto tB = Clock::now();
    SetIntersectForceScalar(false);
    const IntersectCounts before = IntersectCountsSnapshot();
    auto tC = Clock::now();
    sweep(&keep_adaptive);
    auto tD = Clock::now();
    const IntersectCounts delta = IntersectCountsSnapshot() - before;
    if (keep_scalar != keep_adaptive) {
      fprintf(stderr,
              "FATAL: adaptive kernels changed a RuleApplier::Keep "
              "decision (scalar sweep kept %zu, adaptive kept %zu)\n",
              static_cast<size_t>(
                  std::count(keep_scalar.begin(), keep_scalar.end(), 1)),
              static_cast<size_t>(std::count(keep_adaptive.begin(),
                                             keep_adaptive.end(), 1)));
      exit(1);
    }
    const double pairs = static_cast<double>(keep_scalar.size());
    const double scalar_us =
        std::chrono::duration<double, std::micro>(tB - tA).count() / pairs;
    const double adaptive_us =
        std::chrono::duration<double, std::micro>(tD - tC).count() / pairs;
    report.Add("keep/pairs", static_cast<int64_t>(keep_scalar.size()));
    report.Add("keep/scalar_us_per_pair", scalar_us);
    report.Add("keep/adaptive_us_per_pair", adaptive_us);
    report.Add("keep/speedup",
               adaptive_us > 0.0 ? scalar_us / adaptive_us : 0.0);
    report.Add("keep/intersect_small", static_cast<int64_t>(delta.small));
    report.Add("keep/intersect_gallop", static_cast<int64_t>(delta.gallop));
    report.Add("keep/intersect_simd", static_cast<int64_t>(delta.simd));
    report.Add("keep/intersect_early_exit",
               static_cast<int64_t>(delta.early_exit));
    report.Add("keep/simd_kernel", std::string(SimdIntersectKernelName()));
    printf("keep A/B: scalar %.3f us/pair, adaptive %.3f us/pair (%.2fx)\n",
           scalar_us, adaptive_us,
           adaptive_us > 0.0 ? scalar_us / adaptive_us : 0.0);
  }

  // Index build (jobs 1-3 + store views) from a cold catalog, run twice:
  // task arenas on (the default) and off (every engine container on the
  // counted heap allocator). The alloc/* counters in each job's stats are
  // real heap traffic either way — page acquisitions vs individual
  // allocations — so their ratio is the arena win per build.
  auto build_once = [&](bool task_arenas, double* ms, int64_t* alloc_count,
                        int64_t* alloc_bytes) {
    ClusterConfig cc;
    cc.task_arenas = task_arenas;
    Cluster cluster(cc);
    IndexCatalog catalog;
    IndexBuilder builder(&d.a, &cluster);
    auto tA = Clock::now();
    builder.EnsureTokenStores(d.b, fx->fs, &catalog);
    builder.Ensure({ClassifyPredicate(fx->pred, fx->fs)}, &catalog);
    auto tB = Clock::now();
    benchmark::DoNotOptimize(catalog.TotalMemoryUsage());
    *ms = std::chrono::duration<double, std::milli>(tB - tA).count();
    *alloc_count = 0;
    *alloc_bytes = 0;
    for (const JobStats& js : cluster.job_history()) {
      if (auto it = js.counters.find("alloc/count"); it != js.counters.end()) {
        *alloc_count += it->second;
      }
      if (auto it = js.counters.find("alloc/bytes"); it != js.counters.end()) {
        *alloc_bytes += it->second;
      }
    }
  };
  double arena_ms = 0.0, heap_ms = 0.0;
  int64_t arena_count = 0, arena_bytes = 0, heap_count = 0, heap_bytes = 0;
  build_once(true, &arena_ms, &arena_count, &arena_bytes);
  build_once(false, &heap_ms, &heap_count, &heap_bytes);
  report.Add("build/full_ms", arena_ms);
  report.Add("build/heap_ms", heap_ms);
  report.Add("alloc/count", arena_count);
  report.Add("alloc/bytes", arena_bytes);
  report.Add("alloc/count_no_arena", heap_count);
  report.Add("alloc/bytes_no_arena", heap_bytes);
  double reduction = arena_count > 0
                         ? static_cast<double>(heap_count) /
                               static_cast<double>(arena_count)
                         : 0.0;
  report.Add("alloc/reduction", reduction);
  if (!SmokeMode() && reduction < 10.0) {
    fprintf(stderr,
            "FATAL: task arenas cut engine heap allocs only %.1fx "
            "(%lld -> %lld), below the 10x floor\n",
            reduction, static_cast<long long>(heap_count),
            static_cast<long long>(arena_count));
    exit(1);
  }
  printf("build allocs: arenas %lld (%lld B), heap %lld (%lld B), %.1fx\n",
         static_cast<long long>(arena_count),
         static_cast<long long>(arena_bytes),
         static_cast<long long>(heap_count),
         static_cast<long long>(heap_bytes), reduction);

  std::string path = report.Write();
  printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace falcon

int main(int argc, char** argv) {
  falcon::WriteComparisonReport();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
