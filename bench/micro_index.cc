// Microbenchmarks: index build and probe paths (google-benchmark). The
// custom main() first writes BENCH_micro_index.json with a store-path vs
// fallback-path (tokenize + dictionary lookup, the old string behaviour)
// probe comparison, then runs google-benchmark. FALCON_BENCH_SMOKE=1 shrinks
// the dataset so the binary doubles as a ctest smoke test.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <benchmark/benchmark.h>

#include "harness.h"

#include "blocking/filters.h"
#include "blocking/index_builder.h"
#include "index/btree_index.h"
#include "index/hash_index.h"
#include "mapreduce/cluster.h"
#include "workload/generator.h"

namespace falcon {
namespace {

bool SmokeMode() { return std::getenv("FALCON_BENCH_SMOKE") != nullptr; }

const GeneratedDataset& Data() {
  static GeneratedDataset* data = [] {
    WorkloadOptions opt;
    opt.size_a = SmokeMode() ? 300 : 5000;
    opt.size_b = SmokeMode() ? 300 : 5000;
    opt.seed = 3;
    return new GeneratedDataset(GenerateProducts(opt));
  }();
  return *data;
}

void BM_HashIndexBuild(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("modelno");
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashIndex::Build(d.a, col));
  }
}
BENCHMARK(BM_HashIndexBuild);

void BM_HashIndexProbe(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("modelno");
  static HashIndex idx = HashIndex::Build(d.a, col);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        idx.Probe(d.b.Get(i++ % d.b.num_rows(), col)));
  }
}
BENCHMARK(BM_HashIndexProbe);

void BM_BTreeBuild(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("price");
  for (auto _ : state) {
    benchmark::DoNotOptimize(BTreeIndex::Build(d.a, col));
  }
}
BENCHMARK(BM_BTreeBuild);

void BM_BTreeRangeProbe(benchmark::State& state) {
  const auto& d = Data();
  int col = d.a.schema().IndexOf("price");
  static BTreeIndex idx = BTreeIndex::Build(d.a, col);
  size_t i = 0;
  std::vector<RowId> out;
  for (auto _ : state) {
    out.clear();
    double v = d.b.GetNumeric(i++ % d.b.num_rows(), col);
    if (!std::isnan(v)) idx.ProbeRange(v - 10, v + 10, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BTreeRangeProbe);

struct TokenFixture {
  Cluster cluster;
  IndexCatalog catalog;    ///< with B-side store views: id-path probing
  IndexCatalog fallback;   ///< indexes only: tokenize+Find fallback probing
  FeatureSet fs;
  Predicate pred;

  TokenFixture() : cluster(ClusterConfig{}) {
    const auto& d = Data();
    fs = FeatureSet::Generate(d.a, d.b);
    int jac = -1;
    for (const auto& f : fs.features()) {
      if (f.fn == SimFunction::kJaccard && f.tok == Tokenization::kWord &&
          f.name.find("(title,title)") != std::string::npos) {
        jac = f.id;
        break;
      }
    }
    pred = Predicate{jac, jac, PredOp::kGt, 0.5};
    IndexBuilder builder(&d.a, &cluster);
    builder.EnsureTokenStores(d.b, fs, &catalog);
    builder.Ensure({ClassifyPredicate(pred, fs)}, &catalog);
    builder.Ensure({ClassifyPredicate(pred, fs)}, &fallback);
  }
};

void BM_TokenIndexBuild(benchmark::State& state) {
  const auto& d = Data();
  TokenFixture fx;
  IndexNeed need = ClassifyPredicate(fx.pred, fx.fs);
  for (auto _ : state) {
    Cluster cluster((ClusterConfig()));
    IndexCatalog catalog;
    IndexBuilder builder(&d.a, &cluster);
    builder.Ensure({need}, &catalog);
    benchmark::DoNotOptimize(catalog.TotalMemoryUsage());
  }
}
BENCHMARK(BM_TokenIndexBuild)->Unit(benchmark::kMillisecond);

TokenFixture* SharedFixture() {
  static TokenFixture* fx = new TokenFixture();
  return fx;
}

void BM_PrefixFilterProbe(benchmark::State& state) {
  const auto& d = Data();
  TokenFixture* fx = SharedFixture();
  ClauseProber prober(&fx->catalog, &fx->fs, d.a.num_rows());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.ProbePredicate(
        fx->pred, d.b, static_cast<RowId>(i++ % d.b.num_rows())));
  }
}
BENCHMARK(BM_PrefixFilterProbe);

void BM_PrefixFilterProbeFallback(benchmark::State& state) {
  const auto& d = Data();
  TokenFixture* fx = SharedFixture();
  ClauseProber prober(&fx->fallback, &fx->fs, d.a.num_rows());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.ProbePredicate(
        fx->pred, d.b, static_cast<RowId>(i++ % d.b.num_rows())));
  }
}
BENCHMARK(BM_PrefixFilterProbeFallback);

/// Store-path vs fallback-path comparison written to BENCH_micro_index.json.
void WriteComparisonReport() {
  using Clock = std::chrono::steady_clock;
  const auto& d = Data();
  TokenFixture* fx = SharedFixture();
  const size_t sweeps = SmokeMode() ? 2 : 10;

  bench::BenchReport report("micro_index");
  report.Add("rows_a", static_cast<int64_t>(d.a.num_rows()));
  report.Add("rows_b", static_cast<int64_t>(d.b.num_rows()));
  report.Add("sweeps", static_cast<int64_t>(sweeps));
  report.Add("catalog_bytes_with_store",
             static_cast<int64_t>(fx->catalog.TotalMemoryUsage()));
  report.Add("catalog_bytes_fallback",
             static_cast<int64_t>(fx->fallback.TotalMemoryUsage()));

  // Same probing work over every B row, both paths; candidates must agree.
  size_t candidates_store = 0;
  size_t candidates_fallback = 0;
  ClauseProber store_prober(&fx->catalog, &fx->fs, d.a.num_rows());
  ClauseProber fb_prober(&fx->fallback, &fx->fs, d.a.num_rows());
  auto t0 = Clock::now();
  for (size_t s = 0; s < sweeps; ++s) {
    for (RowId b = 0; b < d.b.num_rows(); ++b) {
      candidates_store +=
          store_prober.ProbePredicate(fx->pred, d.b, b).rows.size();
    }
  }
  auto t1 = Clock::now();
  for (size_t s = 0; s < sweeps; ++s) {
    for (RowId b = 0; b < d.b.num_rows(); ++b) {
      candidates_fallback +=
          fb_prober.ProbePredicate(fx->pred, d.b, b).rows.size();
    }
  }
  auto t2 = Clock::now();
  if (candidates_store != candidates_fallback) {
    fprintf(stderr, "FATAL: store/fallback candidate mismatch: %zu vs %zu\n",
            candidates_store, candidates_fallback);
    exit(1);
  }
  const double probes =
      static_cast<double>(sweeps) * static_cast<double>(d.b.num_rows());
  double store_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / probes;
  double fb_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count() / probes;
  report.Add("probe/candidates_per_sweep",
             static_cast<int64_t>(candidates_store / sweeps));
  report.Add("probe/store_us_per_row", store_us);
  report.Add("probe/fallback_us_per_row", fb_us);
  report.Add("probe/speedup", store_us > 0.0 ? fb_us / store_us : 0.0);

  // Index build (jobs 1-3 + store views) from a cold catalog.
  auto t3 = Clock::now();
  {
    Cluster cluster((ClusterConfig()));
    IndexCatalog catalog;
    IndexBuilder builder(&d.a, &cluster);
    builder.EnsureTokenStores(d.b, fx->fs, &catalog);
    builder.Ensure({ClassifyPredicate(fx->pred, fx->fs)}, &catalog);
    benchmark::DoNotOptimize(catalog.TotalMemoryUsage());
  }
  auto t4 = Clock::now();
  report.Add("build/full_ms",
             std::chrono::duration<double, std::milli>(t4 - t3).count());

  std::string path = report.Write();
  printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace falcon

int main(int argc, char** argv) {
  falcon::WriteComparisonReport();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
