// Figure 9: effect of crowd error rate on F1, run time, and cost.
//
// Paper: error 0 -> 15% degrades F1 only minimally/gracefully; run time
// grows mildly; cost shows no clear trend (early convergence can offset
// extra noise); everything stays far below the $349.60 cap.
#include <cstdio>

#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  int runs = static_cast<int>(flags.GetInt("runs", 1));
  std::string dataset = flags.GetString("dataset", "songs");

  std::printf("=== Figure 9: crowd error rate sweep on %s (%d run(s) per "
              "point) ===\n",
              dataset.c_str(), runs);
  BenchReport report("fig9_error_rate");
  report.Add("dataset", dataset);
  report.Add("scale", scale);
  TablePrinter table(
      {"Error rate", "F1(%)", "Total time", "Cost", "Blk.Recall"});
  for (double error : {0.0, 0.05, 0.10, 0.15}) {
    double f1 = 0, cost = 0, brec = 0;
    VDuration total;
    int ok_runs = 0;
    for (int run = 0; run < runs; ++run) {
      uint64_t seed = 300 + run;
      auto data =
          GenerateByName(dataset, DatasetOptions(dataset, scale, seed));
      auto result =
          RunPipeline(*data, BenchFalconConfig(scale, seed),
                      BenchCrowdConfig(error, seed), BenchClusterConfig());
      if (!result.ok()) {
        std::fprintf(stderr, "error=%.2f run %d: %s\n", error, run,
                     result.status().ToString().c_str());
        continue;
      }
      ++ok_runs;
      f1 += result->quality.f1;
      cost += result->metrics.cost;
      brec += result->blocking_recall;
      total += result->metrics.total_time;
      std::string base = "error_" +
                         std::to_string(static_cast<int>(error * 100)) +
                         "/run_" + std::to_string(run);
      report.Add(base + "/f1", result->quality.f1);
      AddLoadMetrics(&report, base, result->metrics);
    }
    if (ok_runs == 0) continue;
    double n = ok_runs;
    table.AddRow({Pct(error, 0) + "%", Pct(f1 / n),
                  (total * (1.0 / n)).ToString(), Money(cost / n),
                  Pct(brec / n)});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: F1 decreases gracefully with error rate; cost\n"
      "shows no monotone trend; all costs far below the $349.60 cap.\n");
  report.Write();
  return 0;
}
