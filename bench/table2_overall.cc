// Tables 2 and 3: overall performance of Falcon.
//
// Paper (Table 2, averages of three runs):
//   Products  P 90.9  R 74.5  F1 81.9   $57.6 (960)   52m / 13h 7m / 13h 25m
//   Songs     P 96.0  R 99.3  F1 97.6   $54.0 (900)   2h 7m / 11h 25m / 11h 58m
//   Citations P 92.0  R 98.5  F1 95.2   $65.5 (1087)  2h 32m / 13h 33m / 14h 37m
// Shapes to reproduce: high F1 at tens of dollars; crowd time dominates
// machine time; total < machine + crowd (masking); candidate sets a tiny
// fraction of A x B yet retaining nearly all matches.
//
// --all-runs additionally prints every individual run (Table 3).
#include <cstdio>

#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  int runs = static_cast<int>(flags.GetInt("runs", 2));
  double error = flags.GetDouble("error", 0.05);
  bool all_runs = flags.GetBool("all-runs") || flags.GetBool("all_runs");

  std::printf("=== Table 2/3: overall performance (scale %.2f, %d run(s), "
              "crowd error %.0f%%) ===\n",
              scale, runs, error * 100);

  BenchReport report("table2_overall");
  report.Add("scale", scale);
  report.Add("runs", static_cast<int64_t>(runs));
  TablePrinter avg({"Dataset", "P(%)", "R(%)", "F1(%)", "Cost(#Q)",
                    "Machine", "Crowd", "Total", "Cand.Set", "Blk.Recall"});
  TablePrinter per({"Dataset", "Run", "P(%)", "R(%)", "F1(%)", "Cost(#Q)",
                    "Machine", "Crowd", "Total", "Cand.Set"});

  PipelineRun last_run;
  GeneratedDataset last_data;
  for (const char* name : {"products", "songs", "citations"}) {
    double p = 0, r = 0, f1 = 0, cost = 0, brecall = 0;
    size_t questions = 0;
    VDuration machine, crowd_t, total;
    size_t cand_min = SIZE_MAX, cand_max = 0;
    for (int run = 0; run < runs; ++run) {
      uint64_t seed = 100 + run;
      auto data = GenerateByName(name, DatasetOptions(name, scale, seed));
      auto result = RunPipeline(*data, BenchFalconConfig(scale, seed),
                                BenchCrowdConfig(error, seed),
                                BenchClusterConfig());
      if (!result.ok()) {
        std::fprintf(stderr, "%s run %d: %s\n", name, run,
                     result.status().ToString().c_str());
        continue;
      }
      p += result->quality.precision;
      r += result->quality.recall;
      f1 += result->quality.f1;
      cost += result->metrics.cost;
      questions += result->metrics.questions;
      machine += result->metrics.machine_time;
      crowd_t += result->metrics.crowd_time;
      total += result->metrics.total_time;
      brecall += result->blocking_recall;
      cand_min = std::min(cand_min, result->metrics.candidate_size);
      cand_max = std::max(cand_max, result->metrics.candidate_size);
      per.AddRow({name, "Run " + std::to_string(run + 1),
                  Pct(result->quality.precision), Pct(result->quality.recall),
                  Pct(result->quality.f1),
                  Money(result->metrics.cost) + " (" +
                      std::to_string(result->metrics.questions) + ")",
                  result->metrics.machine_time.ToString(),
                  result->metrics.crowd_time.ToString(),
                  result->metrics.total_time.ToString(),
                  std::to_string(result->metrics.candidate_size)});
      std::string base = std::string(name) + "/run_" + std::to_string(run);
      report.Add(base + "/f1", result->quality.f1);
      report.Add(base + "/total_seconds", result->metrics.total_time.seconds);
      AddLoadMetrics(&report, base, result->metrics);
      last_run = std::move(*result);
      last_data = std::move(*data);
    }
    double n = runs;
    avg.AddRow({name, Pct(p / n), Pct(r / n), Pct(f1 / n),
                Money(cost / n) + " (" +
                    std::to_string(questions / runs) + ")",
                (machine * (1.0 / n)).ToString(),
                (crowd_t * (1.0 / n)).ToString(),
                (total * (1.0 / n)).ToString(),
                std::to_string(cand_min) + " - " + std::to_string(cand_max),
                Pct(brecall / n)});
  }
  avg.Print();
  if (all_runs) {
    std::printf("\n--- Table 3: all runs ---\n");
    per.Print();
  }

  // Matching-stage strategy check: re-apply the last learned matcher to its
  // candidates eagerly vs fused (exits on any prediction mismatch) and show
  // how much work the pipeline's fused apply_matcher saves.
  if (last_run.candidates.size() > 0) {
    MatcherStageAb ab = AbMatcherStage(last_data, last_run);
    std::printf(
        "\nMatcher stage (last run, %zu candidates): eager %.1fs vs fused "
        "%.1fs virtual work (%.1fx); %.1f/%zu features and %.1f/%zu trees "
        "per pair. Predictions verified identical.\n",
        ab.pairs, ab.eager_s, ab.fused_s, ab.speedup, ab.features_per_pair,
        ab.vector_width, ab.trees_per_pair, ab.num_trees);
  }
  std::printf(
      "\nShape check vs paper: crowd time >> machine time on MTurk-style\n"
      "latency; total time < crowd + machine (masking); blocking recall\n"
      "near 100%%; cost well under the $349.60 cap.\n");
  report.Write();
  return 0;
}
