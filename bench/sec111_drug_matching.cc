// Section 11.1: the drug-matching deployment with an in-house crowd of one.
//
// Paper: 453K x 451K drug tables; one scientist labeled 830 pairs in 1h 37m;
// machine time 2h 10m was 57% of total; masking cut it 49% to 1h 6m, total
// 2h 42m; 99.18% precision / 95.29% recall.
// Shape: with a fast in-house crowd, machine time is a major share of total
// time and masking visibly reduces it.
#include <cstdio>

#include "harness.h"

using namespace falcon;
using namespace falcon::bench;

namespace {

struct DrugRun {
  QualityMetrics q;
  RunMetrics m;
};

Result<DrugRun> Run(const GeneratedDataset& data, const FalconConfig& cfg) {
  Cluster cluster(BenchClusterConfig());
  OracleCrowdConfig ccfg;
  ccfg.seconds_per_pair = VDuration::Seconds(2.0);
  OracleCrowd crowd(ccfg, data.truth.MakeOracle());
  FalconPipeline pipeline(&data.a, &data.b, &crowd, &cluster, cfg);
  FALCON_ASSIGN_OR_RETURN(MatchResult res, pipeline.Run());
  DrugRun out;
  out.q = EvaluateMatches(res.matches, data.truth);
  out.m = res.metrics;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  uint64_t seed = flags.GetInt("seed", 100);

  std::printf("=== Section 11.1: drug matching with an in-house crowd of one "
              "===\n\n");
  auto data = GenerateByName("drugs", DatasetOptions("drugs", scale, seed));
  FalconConfig masked = BenchFalconConfig(scale, seed);
  FalconConfig unmasked = masked;
  unmasked.enable_masking = false;

  auto with = Run(*data, masked);
  auto without = Run(*data, unmasked);
  if (!with.ok() || !without.ok()) {
    std::fprintf(stderr, "run failed: %s / %s\n",
                 with.status().ToString().c_str(),
                 without.status().ToString().c_str());
    return 1;
  }
  BenchReport report("sec111_drug_matching");
  report.Add("scale", scale);
  TablePrinter table({"Config", "P(%)", "R(%)", "Questions", "Crowd time",
                      "Unmasked machine", "Total", "Machine share(%)"});
  auto add = [&](const char* label, const DrugRun& r) {
    double share = r.m.total_time.seconds > 0
                       ? r.m.machine_unmasked.seconds / r.m.total_time.seconds
                       : 0.0;
    table.AddRow({label, Pct(r.q.precision, 2), Pct(r.q.recall, 2),
                  std::to_string(r.m.questions),
                  r.m.crowd_time.ToString(),
                  r.m.machine_unmasked.ToString(), r.m.total_time.ToString(),
                  Pct(share, 0)});
  };
  add("masking OFF", *without);
  add("masking ON", *with);
  AddLoadMetrics(&report, "masking_off", without->m);
  AddLoadMetrics(&report, "masking_on", with->m);
  table.Print();
  double reduction =
      without->m.machine_unmasked.seconds > 0
          ? 1.0 - with->m.machine_unmasked.seconds /
                      without->m.machine_unmasked.seconds
          : 0.0;
  std::printf("\nMasking reduced unmasked machine time by %s%% "
              "(paper: 49%%).\n",
              Pct(reduction, 0).c_str());
  std::printf(
      "Shape check vs paper: with a fast in-house crowd, machine time is a\n"
      "large share of total time, so masking matters even more than on\n"
      "Mechanical Turk; precision and recall stay high.\n");
  report.Write();
  return 0;
}
